//! End-to-end tests for the `HELLO` handshake and `SNAPSHOT_PAGE`
//! streaming: version gating over a real socket under both I/O models,
//! paged reassembly equal to the one-shot snapshot, the `unchanged`
//! delta short-circuit, and a summary too large for any single frame.

use std::time::Duration;

use cots_core::CounterEntry;
use cots_serve::protocol::encode;
use cots_serve::{
    Client, ConnState, IoConfig, IoModel, Request, Response, Server, Service, ServiceConfig,
    MAX_FRAME, MAX_PAGE_ENTRIES, PROTO_VERSION,
};

fn spawn_server(model: IoModel, capacity: usize) -> (String, std::thread::JoinHandle<()>) {
    let io = IoConfig {
        model,
        ..IoConfig::default()
    };
    let server = Server::bind_with(
        "127.0.0.1:0",
        ServiceConfig {
            shards: 2,
            capacity,
            refresh: Duration::from_millis(2),
            ..Default::default()
        },
        io,
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle)
}

/// Wait until the server's publisher epoch holds still — the
/// refresher's confirming publish after quiescence has landed, so the
/// epoch read here stays valid for `since_epoch` comparisons.
fn settled_epoch(client: &mut Client) -> u64 {
    for _ in 0..1_000 {
        let epoch = client.stats().expect("stats").snapshot_epoch;
        std::thread::sleep(Duration::from_millis(25));
        if client.stats().expect("stats").snapshot_epoch == epoch {
            return epoch;
        }
    }
    panic!("publisher epoch never settled");
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// A client that skips HELLO gets `UNSUPPORTED_VERSION` (requested = 0)
/// and the server closes the connection; a wrong version is echoed
/// back; the proper handshake works — under both I/O models.
#[test]
fn handshake_is_mandatory_on_the_wire() {
    for model in [IoModel::Reactor, IoModel::Threads] {
        let (addr, handle) = spawn_server(model, 64);

        // Op before HELLO: rejected, then closed.
        let mut raw = Client::connect_raw(&addr).expect("raw connect");
        raw.set_timeout(Some(Duration::from_secs(10))).unwrap();
        match raw.call(&Request::Stats) {
            Ok(Response::UnsupportedVersion {
                supported,
                requested,
            }) => {
                assert_eq!(supported, PROTO_VERSION, "model {model}");
                assert_eq!(requested, 0, "model {model}");
            }
            other => panic!("model {model}: unexpected pre-HELLO answer: {other:?}"),
        }
        assert!(
            raw.recv().is_err(),
            "model {model}: connection should be closed after the rejection"
        );

        // Wrong version: named in the rejection, then closed.
        let mut raw = Client::connect_raw(&addr).expect("raw connect");
        raw.set_timeout(Some(Duration::from_secs(10))).unwrap();
        match raw.call(&Request::Hello {
            proto_version: 999,
            features: vec![],
        }) {
            Ok(Response::UnsupportedVersion {
                supported,
                requested,
            }) => {
                assert_eq!(supported, PROTO_VERSION, "model {model}");
                assert_eq!(requested, 999, "model {model}");
            }
            other => panic!("model {model}: unexpected bad-HELLO answer: {other:?}"),
        }
        assert!(raw.recv().is_err(), "model {model}: closed after rejection");

        // The blessed path: Client::connect performs HELLO and the
        // connection is fully usable afterwards.
        let mut client = Client::connect(&addr).expect("handshake connect");
        client.set_timeout(Some(Duration::from_secs(10))).unwrap();
        let (version, features) = client.hello().expect("re-HELLO is idempotent");
        assert_eq!(version, PROTO_VERSION);
        assert!(features.iter().any(|f| f == "snapshot-page"));
        client.ingest(&[1, 2, 3]).expect("ingest after handshake");

        shutdown(&addr, handle);
    }
}

/// Page through a snapshot over the wire and check the reassembly is
/// exactly the one-shot `SNAPSHOT` answer, then exercise the
/// `unchanged` delta short-circuit.
#[test]
fn paged_snapshot_matches_one_shot_over_the_wire() {
    let (addr, handle) = spawn_server(IoModel::Reactor, 32);
    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(30))).unwrap();

    let keys: Vec<u64> = (0..5_000u64).map(|i| i % 20).collect();
    for chunk in keys.chunks(512) {
        client.ingest(chunk).expect("ingest");
    }
    cots_serve::loadgen::await_quiescence(&mut client, keys.len() as u64).expect("quiesce");
    let stable = settled_epoch(&mut client);

    let (full_entries, full_total, full_epoch) =
        match client.call(&Request::Snapshot).expect("snapshot") {
            Response::Snapshot { snapshot, stamp } => {
                (snapshot.entries().to_vec(), snapshot.total(), stamp.epoch)
            }
            other => panic!("unexpected: {other:?}"),
        };
    assert_eq!(full_entries.len(), 20);
    assert_eq!(full_total, 5_000);
    assert_eq!(full_epoch, stable);

    // Pull the same summary in pages of 7.
    let mut paged: Vec<CounterEntry<u64>> = Vec::new();
    let mut offset = 0usize;
    loop {
        let resp = client
            .call(&Request::SnapshotPage {
                since_epoch: 0,
                offset,
                limit: 7,
            })
            .expect("page");
        match resp {
            Response::SnapshotPage {
                entries,
                offset: at,
                total_entries,
                total,
                done,
                unchanged,
                stamp,
            } => {
                assert!(!unchanged);
                assert_eq!(at, offset);
                assert_eq!(total_entries, full_entries.len());
                assert_eq!(total, full_total);
                assert_eq!(stamp.epoch, full_epoch, "quiesced: same epoch throughout");
                offset += entries.len();
                paged.extend(entries);
                if done {
                    break;
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert_eq!(paged, full_entries, "paged reassembly == one-shot snapshot");

    // A puller that already holds this epoch gets a tiny `unchanged`
    // answer instead of the data again.
    match client
        .call(&Request::SnapshotPage {
            since_epoch: full_epoch,
            offset: 0,
            limit: MAX_PAGE_ENTRIES,
        })
        .expect("delta page")
    {
        Response::SnapshotPage {
            entries,
            unchanged,
            done,
            stamp,
            ..
        } => {
            assert!(unchanged && done && entries.is_empty());
            assert_eq!(stamp.epoch, full_epoch);
        }
        other => panic!("unexpected: {other:?}"),
    }

    shutdown(&addr, handle);
}

/// A summary whose one-shot encoding exceeds the 16 MiB frame cap can
/// only move via `SNAPSHOT_PAGE`: every page stays under the cap and
/// the reassembly is exact. In-process against the [`Service`] so the
/// test ingests half a million distinct keys in milliseconds, while
/// exercising the same pinned-transfer path the wire uses.
#[test]
fn oversized_snapshot_streams_in_pages() {
    let capacity = 500_000usize;
    let service = Service::start(ServiceConfig {
        shards: 1,
        capacity,
        refresh: Duration::from_millis(5),
        queue_batches: 64,
        ..Default::default()
    })
    .expect("service");
    let mut sender = service.connect();

    // Large key values inflate the JSON encoding well past the frame
    // cap at this entry count.
    let base = 1_000_000_000_000_000u64;
    let items = 600_000u64;
    let mut next = 0u64;
    while next < items {
        let end = (next + 4_096).min(items);
        let keys: Vec<u64> = (next..end).map(|i| base + i).collect();
        loop {
            match service.handle(
                Request::Ingest { keys: keys.clone() },
                &mut sender,
            ) {
                Response::IngestAck { .. } => break,
                Response::Overloaded => std::thread::sleep(Duration::from_micros(200)),
                other => panic!("unexpected ingest answer: {other:?}"),
            }
        }
        next = end;
    }
    let deadline = std::time::Instant::now() + Duration::from_secs(60);
    loop {
        let stats = service.stats();
        if stats.applied_keys() >= items && stats.staleness == 0 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "service did not quiesce: {} applied",
            stats.applied_keys()
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    // Let the confirming publish land so the epoch stays frozen for the
    // duration of the transfer.
    loop {
        let epoch = service.stats().snapshot_epoch;
        std::thread::sleep(Duration::from_millis(25));
        if service.stats().snapshot_epoch == epoch {
            break;
        }
    }

    // The one-shot answer physically cannot fit one frame.
    let (snapshot, one_shot_stamp) = match service.handle(Request::Snapshot, &mut sender) {
        Response::Snapshot { snapshot, stamp } => (snapshot, stamp),
        other => panic!("unexpected: {other:?}"),
    };
    assert_eq!(snapshot.len(), capacity);
    let one_shot = encode(&Response::Snapshot {
        snapshot: snapshot.clone(),
        stamp: one_shot_stamp,
    });
    assert!(
        one_shot.len() > MAX_FRAME,
        "one-shot snapshot must exceed the frame cap for this test to bite \
         ({} <= {MAX_FRAME})",
        one_shot.len()
    );

    // Stream it in pages through the pinned-transfer path: every page
    // frames, and the reassembly is exact.
    let mut conn = ConnState::pre_greeted();
    let mut paged: Vec<CounterEntry<u64>> = Vec::new();
    let mut offset = 0usize;
    let mut pages = 0usize;
    let mut pinned_epoch = None;
    loop {
        let reply = service.serve(
            Request::SnapshotPage {
                since_epoch: 0,
                offset,
                limit: MAX_PAGE_ENTRIES,
            },
            &mut conn,
            &mut sender,
        );
        let framed = encode(&reply.response);
        assert!(
            framed.len() <= MAX_FRAME,
            "page {pages} overflows a frame: {} bytes",
            framed.len()
        );
        match reply.response {
            Response::SnapshotPage {
                entries,
                total_entries,
                done,
                unchanged,
                stamp,
                ..
            } => {
                assert!(!unchanged);
                assert_eq!(total_entries, capacity);
                // The transfer is pinned: every page reads the same
                // epoch, no matter what publishes underneath it.
                let epoch = *pinned_epoch.get_or_insert(stamp.epoch);
                assert_eq!(stamp.epoch, epoch);
                offset += entries.len();
                paged.extend(entries);
                pages += 1;
                if done {
                    break;
                }
            }
            other => panic!("unexpected: {other:?}"),
        }
    }
    assert!(pages > 1, "a >16 MiB summary must take multiple pages");
    assert_eq!(paged.len(), snapshot.len());
    // The pinned transfer may be a different (equal-content) publish
    // than the one-shot; equal counts tie-break in capture order, so
    // compare as multisets.
    let mut paged_sorted = paged;
    paged_sorted.sort_by_key(|e| e.item);
    let mut full_sorted = snapshot.entries().to_vec();
    full_sorted.sort_by_key(|e| e.item);
    assert_eq!(paged_sorted, full_sorted);

    drop(sender);
    service.drain();
}
