//! Property tests for the wire layer: framing and protocol codecs must
//! be total — any input either round-trips or errors, never panics —
//! and the BIN1 binary encoding must be observationally identical to
//! JSON: both decode to the same `Request`/`Response` values.

use proptest::prelude::*;
use proptest::strategy::Strategy;

use cots_core::CounterEntry;
use cots_serve::bin1;
use cots_serve::frame::{decode_frame, encode_frame, FrameAssembler, FrameError, Payload, MAX_FRAME};
use cots_serve::protocol::{
    decode, encode, QueryReq, QueryStamp, ReplFrame, Request, Response, MAX_PAGE_ENTRIES,
};

/// Feed `bytes` into an assembler cut at `cuts` (interpreted as split
/// offsets), collecting every decoded frame and the first error.
fn assemble_in_pieces(bytes: &[u8], cuts: &[usize]) -> (Vec<Payload>, Option<FrameError>) {
    let mut splits: Vec<usize> = cuts.iter().map(|c| c % (bytes.len() + 1)).collect();
    splits.sort_unstable();
    let mut asm = FrameAssembler::new();
    let mut frames = Vec::new();
    let mut prev = 0;
    for cut in splits.into_iter().chain(std::iter::once(bytes.len())) {
        asm.extend(&bytes[prev..cut]);
        prev = cut;
        loop {
            match asm.next_frame() {
                Ok(Some(p)) => frames.push(p),
                Ok(None) => break,
                Err(e) => return (frames, Some(e)),
            }
        }
    }
    (frames, None)
}

/// Arbitrary (possibly multi-byte, possibly empty) UTF-8 payloads.
fn utf8_payload(max_bytes: usize) -> impl Strategy<Value = String> {
    proptest::collection::vec(any::<u8>(), 0..max_bytes)
        .prop_map(|bytes| String::from_utf8_lossy(&bytes).into_owned())
}

/// Key batches biased toward the edges: empty, single-key, and bulky.
fn key_batch() -> impl Strategy<Value = Vec<u64>> {
    prop_oneof![
        Just(Vec::new()),
        proptest::collection::vec(any::<u64>(), 1..=1),
        proptest::collection::vec(any::<u64>(), 2..512),
    ]
}

/// Requests that have a BIN1 form.
fn bulk_request() -> impl Strategy<Value = Request> {
    prop_oneof![
        key_batch().prop_map(|keys| Request::Ingest { keys }),
        (
            any::<u64>(),
            proptest::collection::vec((any::<u64>(), key_batch()), 0..8)
        )
            .prop_map(|(lineage, batches)| Request::ReplBatch {
                lineage,
                batches: batches
                    .into_iter()
                    .map(|(seq, keys)| ReplFrame { seq, keys })
                    .collect(),
            }),
        (any::<u64>(), any::<usize>(), any::<usize>()).prop_map(|(since_epoch, offset, limit)| {
            Request::SnapshotPage {
                since_epoch,
                offset,
                limit,
            }
        }),
    ]
}

/// Responses that have a BIN1 form.
fn bulk_response() -> impl Strategy<Value = Response> {
    let stamp = (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>(), any::<u64>()).prop_map(
        |(epoch, captured_total, staleness, has_rot, rot)| QueryStamp {
            epoch,
            captured_total,
            staleness,
            rotations: has_rot.then_some(rot),
        },
    );
    prop_oneof![
        any::<u64>().prop_map(|enqueued| Response::IngestAck { enqueued }),
        Just(Response::Overloaded),
        any::<u64>().prop_map(|ack_seq| Response::ReplAck { ack_seq }),
        (
            proptest::collection::vec((any::<u64>(), any::<u64>(), any::<u64>()), 0..64),
            (any::<usize>(), any::<usize>(), any::<u64>()),
            (any::<bool>(), any::<bool>()),
            stamp,
        )
            .prop_map(
                |(entries, (offset, total_entries, total), (done, unchanged), stamp)| {
                    Response::SnapshotPage {
                        // Struct literal: the wire admits `error > count`
                        // (both codecs decode it literally), so the
                        // differential property must cover it.
                        entries: entries
                            .into_iter()
                            .map(|(item, count, error)| CounterEntry { item, count, error })
                            .collect(),
                        offset,
                        total_entries,
                        total,
                        done,
                        unchanged,
                        stamp,
                    }
                }
            ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn frame_round_trips(payload in utf8_payload(512)) {
        let frame = encode_frame(&payload);
        let (back, used) = decode_frame(&frame).unwrap();
        prop_assert_eq!(back, Payload::Json(payload));
        prop_assert_eq!(used, frame.len());
    }

    #[test]
    fn truncated_frames_are_incomplete(payload in utf8_payload(256), keep in any::<usize>()) {
        let frame = encode_frame(&payload);
        let keep = keep % frame.len(); // strictly shorter than the frame
        prop_assert_eq!(
            decode_frame(&frame[..keep]).unwrap_err(),
            FrameError::Incomplete
        );
    }

    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..2048)) {
        // Decoding must be total: Ok or a typed error, never a panic or
        // an allocation driven by the (attacker-controlled) prefix.
        match decode_frame(&bytes) {
            Ok((payload, used)) => {
                prop_assert!(used <= bytes.len());
                prop_assert!(payload.len() <= used - 4);
            }
            Err(FrameError::Incomplete | FrameError::Malformed(_)) => {}
            Err(FrameError::TooLarge(n)) => prop_assert!(n > MAX_FRAME),
        }
    }

    #[test]
    fn oversized_lengths_are_rejected(extra in 1u64..(u32::MAX as u64 - MAX_FRAME as u64)) {
        let len = (MAX_FRAME as u64 + extra) as u32;
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(b"body");
        prop_assert_eq!(
            decode_frame(&bytes).unwrap_err(),
            FrameError::TooLarge(len as usize)
        );
    }

    #[test]
    fn requests_round_trip(keys in proptest::collection::vec(any::<u64>(), 0..64),
                           phi_millis in 1u64..999,
                           k in 0usize..100,
                           key in any::<u64>(),
                           pick in 0usize..6) {
        let request = match pick % 6 {
            0 => Request::Ingest { keys },
            1 => Request::Query(QueryReq::Point { key }),
            2 => Request::Query(QueryReq::Frequent { phi: phi_millis as f64 / 1000.0 }),
            3 => Request::Query(QueryReq::TopK { k }),
            4 => Request::Stats,
            _ => Request::Shutdown,
        };
        // Through the full stack: protocol encode → frame → decode.
        let frame = encode_frame(&encode(&request));
        let (payload, _) = decode_frame(&frame).unwrap();
        let Payload::Json(text) = payload else {
            prop_assert!(false, "JSON payload classified as binary");
            unreachable!();
        };
        let back: Request = decode(&text).unwrap();
        prop_assert_eq!(back, request);
    }

    #[test]
    fn garbage_payloads_error_not_panic(payload in utf8_payload(256)) {
        // Any text payload must yield Ok or CotsError::Protocol — never
        // a panic. (Most lossy-decoded byte soup is not valid JSON.)
        let _ = decode::<Request>(&payload);
        let _ = decode::<Response>(&payload);
    }

    #[test]
    fn truncated_length_prefix_is_incomplete(bytes in proptest::collection::vec(any::<u8>(), 0..4)) {
        // Fewer than 4 bytes can never yield a length, whatever they are.
        prop_assert_eq!(decode_frame(&bytes).unwrap_err(), FrameError::Incomplete);
    }

    #[test]
    fn assembler_matches_one_shot_at_arbitrary_splits(
        payloads in proptest::collection::vec(utf8_payload(128), 1..8),
        cuts in proptest::collection::vec(any::<usize>(), 0..32),
    ) {
        // A frame sequence delivered at arbitrary split points — 1-byte
        // reads, header straddles, several frames per read — must decode
        // to exactly what the one-shot path yields, in order.
        let mut bytes = Vec::new();
        for p in &payloads {
            bytes.extend_from_slice(&encode_frame(p));
        }
        let (frames, err) = assemble_in_pieces(&bytes, &cuts);
        prop_assert_eq!(err, None);
        let expect: Vec<Payload> = payloads.into_iter().map(Payload::Json).collect();
        prop_assert_eq!(frames, expect);
    }

    #[test]
    fn assembler_byte_at_a_time_equals_one_shot(payload in utf8_payload(256)) {
        // The pathological 1-byte-read case, exhaustively split.
        let bytes = encode_frame(&payload);
        let every_byte: Vec<usize> = (0..bytes.len()).collect();
        let (frames, err) = assemble_in_pieces(&bytes, &every_byte);
        prop_assert_eq!(err, None);
        prop_assert_eq!(frames, vec![Payload::Json(payload)]);
    }

    #[test]
    fn assembler_garbage_prefix_errors_cleanly(
        extra in 1u64..(u32::MAX as u64 - MAX_FRAME as u64),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        // A length prefix past the cap must surface as a clean typed
        // error at whatever split point completes the header — never a
        // panic, never an allocation of the claimed size.
        let len = (MAX_FRAME as u64 + extra) as u32;
        let mut bytes = len.to_le_bytes().to_vec();
        bytes.extend_from_slice(b"garbage body");
        let (frames, err) = assemble_in_pieces(&bytes, &cuts);
        prop_assert_eq!(frames, Vec::<Payload>::new());
        prop_assert_eq!(err, Some(FrameError::TooLarge(len as usize)));
    }

    #[test]
    fn assembler_non_utf8_body_is_malformed_not_panic(
        body in proptest::collection::vec(any::<u8>(), 1..64),
        cuts in proptest::collection::vec(any::<usize>(), 0..8),
    ) {
        // Arbitrary byte bodies: a leading BIN1 magic classifies as a
        // binary payload, other valid UTF-8 as JSON, and everything else
        // is Malformed; nothing panics in any case.
        let mut bytes = (body.len() as u32).to_le_bytes().to_vec();
        bytes.extend_from_slice(&body);
        let (frames, err) = assemble_in_pieces(&bytes, &cuts);
        match err {
            None => {
                prop_assert_eq!(frames.len(), 1);
                if body[0] == cots_serve::BIN1_MAGIC {
                    prop_assert_eq!(&frames[0], &Payload::Bin(body));
                } else {
                    prop_assert!(String::from_utf8(body).is_ok());
                }
            }
            Some(FrameError::Malformed(_)) => {
                prop_assert!(body[0] != cots_serve::BIN1_MAGIC);
                prop_assert!(String::from_utf8(body).is_err());
            }
            Some(other) => prop_assert!(false, "unexpected error {other:?}"),
        }
    }

    #[test]
    fn at_cap_prefix_waits_for_body(body_len in 0usize..64) {
        // A prefix of exactly MAX_FRAME is legal: with a short body the
        // decoder asks for more bytes instead of rejecting or panicking.
        let mut bytes = (MAX_FRAME as u32).to_le_bytes().to_vec();
        bytes.extend(std::iter::repeat_n(b'a', body_len));
        prop_assert_eq!(decode_frame(&bytes).unwrap_err(), FrameError::Incomplete);
    }

    // ---- BIN1 ↔ JSON differential properties ----

    #[test]
    fn bin1_and_json_decode_to_identical_requests(request in bulk_request()) {
        let bin = bin1::encode_request(&request)
            .expect("every bulk request has a BIN1 form");
        let from_bin = bin1::decode_request(&bin).unwrap();
        let from_json: Request = decode(&encode(&request)).unwrap();
        prop_assert_eq!(&from_bin, &from_json);
        prop_assert_eq!(&from_bin, &request);
    }

    #[test]
    fn bin1_and_json_decode_to_identical_responses(response in bulk_response()) {
        let bin = bin1::encode_response(&response)
            .expect("every bulk response has a BIN1 form");
        let from_bin = bin1::decode_response(&bin).unwrap();
        let from_json: Response = decode(&encode(&response)).unwrap();
        prop_assert_eq!(&from_bin, &from_json);
        prop_assert_eq!(&from_bin, &response);
    }

    #[test]
    fn bin1_garbage_errors_never_panic(mut bytes in proptest::collection::vec(any::<u8>(), 0..512),
                                       force_magic in any::<bool>()) {
        // Arbitrary byte soup — with and without a valid leading magic —
        // must produce Ok or a typed error on both decoders.
        if force_magic && !bytes.is_empty() {
            bytes[0] = cots_serve::BIN1_MAGIC;
        }
        let _ = bin1::decode_request(&bytes);
        let _ = bin1::decode_response(&bytes);
    }

    #[test]
    fn bin1_truncations_error_never_panic(request in bulk_request(), keep in any::<usize>()) {
        let bin = bin1::encode_request(&request).expect("bulk request");
        let keep = keep % bin.len(); // strictly shorter
        prop_assert!(bin1::decode_request(&bin[..keep]).is_err());
    }

    #[test]
    fn bin1_bit_flips_error_or_decode_never_panic(response in bulk_response(),
                                                  bit in any::<usize>()) {
        let mut bin = bin1::encode_response(&response).expect("bulk response");
        let nbits = bin.len() * 8;
        let bit = bit % nbits;
        bin[bit / 8] ^= 1 << (bit % 8);
        // A flipped count or length byte must not drive allocation or
        // indexing; a flipped value byte simply decodes to other values.
        let _ = bin1::decode_response(&bin);
        let _ = bin1::decode_request(&bin);
    }
}

#[test]
fn zero_length_frame_decodes_to_empty_payload() {
    let (payload, used) = decode_frame(&0u32.to_le_bytes()).unwrap();
    assert_eq!(payload, Payload::Json(String::new()));
    assert_eq!(used, 4);
}

#[test]
fn exactly_at_cap_frame_decodes() {
    let body = "a".repeat(MAX_FRAME);
    let frame = encode_frame(&body);
    let (payload, used) = decode_frame(&frame).unwrap();
    assert_eq!(payload.len(), MAX_FRAME);
    assert_eq!(used, 4 + MAX_FRAME);
}

#[test]
fn assembler_handles_cap_sized_payload_across_splits() {
    // A maximum-size frame delivered with a straddled header, a mid-body
    // split, and a held-back final byte still decodes exactly once.
    let body = "z".repeat(MAX_FRAME);
    let bytes = encode_frame(&body);
    let cuts = [2, 4 + MAX_FRAME / 2, bytes.len() - 1];
    let (frames, err) = assemble_in_pieces(&bytes, &cuts);
    assert_eq!(err, None);
    assert_eq!(frames.len(), 1);
    assert_eq!(frames[0].len(), MAX_FRAME);
}

#[test]
fn one_past_cap_is_rejected_before_any_body_arrives() {
    let bytes = ((MAX_FRAME + 1) as u32).to_le_bytes();
    assert_eq!(
        decode_frame(&bytes).unwrap_err(),
        FrameError::TooLarge(MAX_FRAME + 1)
    );
}

/// The largest INGEST batch a BIN1 frame can carry:
/// `MAX_FRAME = 6 + 8·n` solved for n.
const CAP_KEYS: usize = (MAX_FRAME - 6) / 8;

#[test]
fn bin1_ingest_at_frame_cap_round_trips_and_one_past_overflows() {
    let keys: Vec<u64> = (0..CAP_KEYS as u64).collect();
    let bin = bin1::encode_ingest(&keys);
    assert!(bin.len() <= MAX_FRAME, "cap-sized batch must fit a frame");
    match bin1::decode_request(&bin).unwrap() {
        Request::Ingest { keys: back } => assert_eq!(back, keys),
        other => panic!("unexpected decode: {other:?}"),
    }
    // One more key crosses MAX_FRAME: the frame writer refuses it
    // cleanly rather than emitting an unreadable frame.
    let over: Vec<u64> = (0..=CAP_KEYS as u64).collect();
    let payload = Payload::Bin(bin1::encode_ingest(&over));
    assert!(payload.len() > MAX_FRAME);
    let mut sink = Vec::new();
    assert!(cots_serve::frame::write_payload(&mut sink, &payload).is_err());
    assert!(sink.is_empty(), "no partial frame may reach the wire");
}

#[test]
fn bin1_page_response_at_entry_cap_round_trips() {
    let entries: Vec<CounterEntry<u64>> = (0..MAX_PAGE_ENTRIES as u64)
        .map(|i| CounterEntry::new(i, i * 2, i / 2))
        .collect();
    let stamp = QueryStamp {
        epoch: 7,
        captured_total: 9,
        staleness: 3,
        rotations: Some(1),
    };
    let bin = bin1::encode_page_resp(&entries, 0, entries.len(), 9, true, false, stamp);
    assert!(bin.len() <= MAX_FRAME, "a full page must fit a frame");
    match bin1::decode_response(&bin).unwrap() {
        Response::SnapshotPage {
            entries: back,
            total_entries,
            done,
            stamp: back_stamp,
            ..
        } => {
            assert_eq!(back, entries);
            assert_eq!(total_entries, entries.len());
            assert!(done);
            assert_eq!(back_stamp.rotations, Some(1));
        }
        other => panic!("unexpected decode: {other:?}"),
    }
}
