//! Interop end-to-end tests for the negotiated BIN1 encoding: a
//! JSON-only protocol-v3 client keeps working against a binary-capable
//! server (same answers, byte-for-byte JSON frames), BIN1 frames are
//! refused on connections that did not negotiate `"bin"`, and malformed
//! binary frames produce clean errors on a live connection — under both
//! I/O models.

use std::time::Duration;

use cots_serve::frame::Payload;
use cots_serve::protocol::QueryReq;
use cots_serve::{
    Client, IoConfig, IoModel, Request, Response, Server, ServiceConfig, BIN1_MAGIC, PROTO_VERSION,
};

fn spawn_server(model: IoModel) -> (String, std::thread::JoinHandle<()>) {
    let io = IoConfig {
        model,
        ..IoConfig::default()
    };
    let server = Server::bind_with(
        "127.0.0.1:0",
        ServiceConfig {
            shards: 2,
            capacity: 64,
            refresh: Duration::from_millis(2),
            ..Default::default()
        },
        io,
    )
    .expect("bind");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || {
        server.run().expect("server run");
    });
    (addr, handle)
}

fn shutdown(addr: &str, handle: std::thread::JoinHandle<()>) {
    let mut client = Client::connect(addr).expect("connect for shutdown");
    client.shutdown().expect("shutdown");
    handle.join().expect("server thread");
}

/// Wait until queries converge on `total` observed mass.
fn settle(client: &mut Client, total: u64) {
    for _ in 0..1_000 {
        let (_, seen, _) = client.query(QueryReq::TopK { k: 64 }).expect("query");
        if seen == total {
            return;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("ingested mass never became visible");
}

/// A protocol-v3 client that never advertises `"bin"` gets pure JSON
/// frames back — and sees exactly the same answers as a v4 binary
/// client on the same server.
#[test]
fn json_only_v3_client_interoperates_with_binary_server() {
    for model in [IoModel::Reactor, IoModel::Threads] {
        let (addr, handle) = spawn_server(model);

        // The modern client: negotiates BIN1 and ingests binary.
        let mut modern = Client::connect(&addr).expect("modern connect");
        modern.set_timeout(Some(Duration::from_secs(10))).unwrap();
        assert!(modern.is_binary(), "model {model}: server must offer bin");

        // The legacy client: protocol v3, no feature flags at all.
        let mut legacy = Client::connect_raw(&addr).expect("legacy connect");
        legacy.set_timeout(Some(Duration::from_secs(10))).unwrap();
        match legacy.call(&Request::Hello {
            proto_version: 3,
            features: vec![],
        }) {
            Ok(Response::HelloAck { proto_version, .. }) => {
                assert_eq!(proto_version, PROTO_VERSION, "model {model}")
            }
            other => panic!("model {model}: v3 HELLO failed: {other:?}"),
        }
        assert!(!legacy.is_binary(), "model {model}: legacy stays JSON");

        // Both ingest; the binary ack must actually be binary and the
        // legacy ack actually JSON.
        modern
            .send(&Request::Ingest {
                keys: vec![1, 1, 2, 3],
            })
            .expect("modern send");
        let payload = modern.recv_payload().expect("modern ack");
        assert!(payload.is_bin(), "model {model}: negotiated ack is BIN1");
        match Client::decode_response(&payload).expect("decode") {
            Response::IngestAck { enqueued } => assert_eq!(enqueued, 4, "model {model}"),
            other => panic!("model {model}: unexpected ack {other:?}"),
        }
        legacy.send(&Request::Ingest { keys: vec![1, 4] }).expect("legacy send");
        let payload = legacy.recv_payload().expect("legacy ack");
        assert!(!payload.is_bin(), "model {model}: JSON conn gets JSON ack");
        match Client::decode_response(&payload).expect("decode") {
            Response::IngestAck { enqueued } => assert_eq!(enqueued, 2, "model {model}"),
            other => panic!("model {model}: unexpected ack {other:?}"),
        }

        // Same question, both encodings of client: byte-identical JSON
        // answers (queries are JSON on every connection).
        settle(&mut modern, 6);
        modern.send(&Request::Query(QueryReq::TopK { k: 64 })).unwrap();
        let modern_raw = modern.recv_payload().expect("modern answer");
        legacy.send(&Request::Query(QueryReq::TopK { k: 64 })).unwrap();
        let legacy_raw = legacy.recv_payload().expect("legacy answer");
        assert!(!modern_raw.is_bin() && !legacy_raw.is_bin(), "model {model}");
        assert_eq!(
            modern_raw.bytes(),
            legacy_raw.bytes(),
            "model {model}: answers must be byte-identical across client generations"
        );

        shutdown(&addr, handle);
    }
}

/// A BIN1 frame on a connection that never negotiated `"bin"` is an
/// error and the connection closes — same contract as a failed
/// handshake.
#[test]
fn bin1_without_negotiation_is_refused_and_closed() {
    for model in [IoModel::Reactor, IoModel::Threads] {
        let (addr, handle) = spawn_server(model);

        let mut raw = Client::connect_raw(&addr).expect("raw connect");
        raw.set_timeout(Some(Duration::from_secs(10))).unwrap();
        raw.call(&Request::Hello {
            proto_version: PROTO_VERSION,
            features: vec![], // deliberately not advertising bin
        })
        .expect("hello");
        raw.send_payload(&Payload::Bin(cots_serve::bin1::encode_ingest(&[1, 2])))
            .expect("send binary frame");
        match raw.recv() {
            Ok(Response::Error { message }) => {
                assert!(message.contains("bin"), "model {model}: {message}")
            }
            other => panic!("model {model}: expected Error, got {other:?}"),
        }
        assert!(raw.recv().is_err(), "model {model}: closed after violation");

        shutdown(&addr, handle);
    }
}

/// Malformed BIN1 bytes on a *negotiated* connection answer with a JSON
/// error and the connection survives — mirroring garbage-JSON handling.
#[test]
fn malformed_bin1_errors_cleanly_and_connection_survives() {
    for model in [IoModel::Reactor, IoModel::Threads] {
        let (addr, handle) = spawn_server(model);

        let mut client = Client::connect(&addr).expect("connect");
        client.set_timeout(Some(Duration::from_secs(10))).unwrap();
        assert!(client.is_binary());

        for garbage in [
            vec![BIN1_MAGIC],                      // no tag
            vec![BIN1_MAGIC, 0x7F],                // unknown tag
            vec![BIN1_MAGIC, 0x01, 9, 0, 0, 0],    // claims 9 keys, has none
            vec![BIN1_MAGIC, 0x01, 0, 0, 0, 0, 1], // trailing byte
        ] {
            client
                .send_payload(&Payload::Bin(garbage))
                .expect("send garbage");
            match client.recv() {
                Ok(Response::Error { .. }) => {}
                other => panic!("model {model}: expected Error, got {other:?}"),
            }
        }
        // Still alive and fully functional, still binary.
        client.ingest(&[5, 6, 7]).expect("ingest after garbage");
        client.stats().expect("stats after garbage");

        shutdown(&addr, handle);
    }
}

/// `set_binary(false)` drops a negotiated connection back to JSON and
/// `set_binary(true)` restores it — the differential-testing switch the
/// loadgen `--wire` flag rides on.
#[test]
fn set_binary_toggles_wire_encoding_per_connection() {
    let (addr, handle) = spawn_server(IoModel::Reactor);

    let mut client = Client::connect(&addr).expect("connect");
    client.set_timeout(Some(Duration::from_secs(10))).unwrap();
    assert!(client.is_binary());

    assert!(!client.set_binary(false));
    client.send(&Request::Ingest { keys: vec![1] }).unwrap();
    let ack = client.recv_payload().expect("ack");
    assert!(!ack.is_bin(), "forced-JSON ingest must be answered in JSON");

    assert!(client.set_binary(true), "re-enable after negotiation");
    client.send(&Request::Ingest { keys: vec![2] }).unwrap();
    let ack = client.recv_payload().expect("ack");
    assert!(ack.is_bin(), "binary ingest answered in BIN1");

    shutdown(&addr, handle);
}
