//! End-to-end loopback test: a real TCP server, the real load generator,
//! and answers checked against both exact truth and a sequential
//! `SpaceSaving` oracle run over the very same stream — under both I/O
//! models (the default reactor and the blocking thread-per-connection
//! fallback), which must be observably identical on the wire.

use std::time::Duration;

use cots_core::{FrequencyCounter, QueryableSummary, SummaryConfig, Threshold};
use cots_datagen::{ExactCounter, StreamSpec};
use cots_sequential::SpaceSaving;
use cots_serve::loadgen::{self, LoadConfig};
use cots_serve::protocol::QueryReq;
use cots_serve::{Client, IoConfig, IoModel, Server, ServiceConfig};

const CAPACITY: usize = 1_000;
const ITEMS: u64 = 200_000;
const ALPHABET: usize = 20_000;
const ALPHA: f64 = 1.5;
const SEED: u64 = 7;
const PHI: f64 = 0.01;

fn io(model: IoModel) -> IoConfig {
    IoConfig {
        model,
        ..IoConfig::default()
    }
}

#[test]
fn served_answers_match_sequential_oracle_reactor() {
    served_answers_match_sequential_oracle(IoModel::Reactor);
}

#[test]
fn served_answers_match_sequential_oracle_threads() {
    served_answers_match_sequential_oracle(IoModel::Threads);
}

fn served_answers_match_sequential_oracle(model: IoModel) {
    let server = Server::bind_with(
        "127.0.0.1:0",
        ServiceConfig {
            shards: 4,
            capacity: CAPACITY,
            refresh: Duration::from_millis(5),
            ..Default::default()
        },
        io(model),
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let server_thread = std::thread::spawn(move || server.run());

    // Replay the stream over the wire with concurrent queries in flight,
    // letting the load generator's own truth check run too.
    let report = loadgen::run(&LoadConfig {
        addr: addr.clone(),
        items: ITEMS,
        alphabet: ALPHABET,
        alpha: ALPHA,
        seed: SEED,
        batch: 4_096,
        connections: 2,
        qps: 50,
        phi: PHI,
        check: true,
        ..Default::default()
    })
    .unwrap();
    assert_eq!(report.items, ITEMS);
    assert!(report.queries_issued > 0, "concurrent queries exercised");
    let check = report.check.expect("check requested");
    assert!(check.passed, "load generator check failed: {check:?}");
    assert_eq!(check.missed, 0, "Space Saving recall must be 1.0");
    assert_eq!(check.bound_violations, 0);

    // Independent oracle: sequential Space Saving with the same counter
    // budget over the identical stream.
    let stream = StreamSpec::zipf(ITEMS as usize, ALPHABET, ALPHA, SEED).generate();
    let mut oracle = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(CAPACITY).unwrap());
    oracle.process_slice(&stream);
    let oracle_snap = oracle.snapshot();
    let truth = ExactCounter::from_stream(&stream);
    let threshold = Threshold::Fraction(PHI).resolve(ITEMS);

    let mut client = Client::connect(&addr).unwrap();
    let (entries, total, stamp) = client.query(QueryReq::Frequent { phi: PHI }).unwrap();
    assert_eq!(total, ITEMS);
    assert_eq!(stamp.staleness, 0, "post-quiescence answers are exact");
    assert!(stamp.epoch > 0);

    // (1) Everything the oracle *guarantees* frequent, the server reports.
    // (2) Everything the server *guarantees* frequent is truly frequent,
    //     and therefore also in the oracle's answer (oracle estimates
    //     dominate true counts).
    let oracle_frequent = oracle_snap.frequent(Threshold::Count(threshold));
    for e in &oracle_frequent {
        if e.guaranteed() >= threshold {
            assert!(
                entries.iter().any(|s| s.item == e.item),
                "server answer misses oracle-guaranteed item {}",
                e.item
            );
        }
    }
    for s in &entries {
        let true_count = truth.count(&s.item);
        assert!(
            s.count >= true_count && s.count - s.error <= true_count,
            "entry {} outside the Space Saving envelope: count={} error={} true={}",
            s.item,
            s.count,
            s.error,
            true_count
        );
        if s.count - s.error >= threshold {
            assert!(
                oracle_frequent.iter().any(|o| o.item == s.item),
                "server-guaranteed item {} absent from the oracle answer",
                s.item
            );
        }
    }

    // Point queries agree with truth within the envelope too.
    let hottest = oracle_snap.top_k(1)[0].item;
    let (point, _, _) = client.query(QueryReq::Point { key: hottest }).unwrap();
    let e = &point[0];
    let t = truth.count(&hottest);
    assert!(e.count >= t && e.count - e.error <= t);

    // Top-k comes back heaviest-first.
    let (top, _, _) = client.query(QueryReq::TopK { k: 10 }).unwrap();
    assert_eq!(top.len(), 10);
    assert!(top.windows(2).all(|w| w[0].count >= w[1].count));

    client.shutdown().unwrap();
    drop(client);
    server_thread.join().unwrap().unwrap();
}

#[test]
fn malformed_traffic_cannot_kill_the_server_reactor() {
    malformed_traffic_cannot_kill_the_server(IoModel::Reactor);
}

#[test]
fn malformed_traffic_cannot_kill_the_server_threads() {
    malformed_traffic_cannot_kill_the_server(IoModel::Threads);
}

fn malformed_traffic_cannot_kill_the_server(model: IoModel) {
    use std::io::{Read, Write};

    let server = Server::bind_with("127.0.0.1:0", ServiceConfig::default(), io(model)).unwrap();
    let addr = server.local_addr();
    let server_thread = std::thread::spawn(move || server.run());

    // Garbage bytes: server answers with an error frame or just closes.
    {
        let mut s = std::net::TcpStream::connect(addr).unwrap();
        s.write_all(&u32::MAX.to_le_bytes()).unwrap();
        s.write_all(b"not a frame at all").unwrap();
        let mut sink = Vec::new();
        let _ = s.read_to_end(&mut sink); // server closes on violation
    }
    // Valid frame, garbage JSON: connection survives with an Error reply.
    {
        let mut client = Client::connect(&addr.to_string()).unwrap();
        let report = client.stats().unwrap();
        assert_eq!(report.ingested_keys, 0);
    }
    // A healthy client still works afterwards.
    let mut client = Client::connect(&addr.to_string()).unwrap();
    client.ingest(&[1, 2, 3]).unwrap();
    client.shutdown().unwrap();
    drop(client);
    server_thread.join().unwrap().unwrap();
}
