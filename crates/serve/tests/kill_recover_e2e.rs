//! Kill-and-recover end-to-end: a real `cots-serve` process with
//! `--data-dir` is fed a deterministic Zipf stream, SIGKILLed mid-stream,
//! and restarted on the same directory. The restarted server must come
//! back with everything explicitly checkpointed, report how much tail it
//! lost, and keep every answer inside the envelope implied by that loss:
//!
//! * never over-report: `count − error ≤ sent(k)` for every entry;
//! * bounded loss: `count + lost ≥ sent(k)`, with
//!   `lost = |sent| − recovered_items`;
//! * recall: keys whose sent count clears the threshold even after
//!   deducting the whole lost mass must appear in `frequent(φ)`.
//!
//! A final `cots-load --resume` run proves the recovered server is live
//! and that the deterministic replay can continue exactly where the
//! crashed stream stopped.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use cots_core::Threshold;
use cots_datagen::{ExactCounter, StreamSpec};
use cots_serve::loadgen::await_quiescence;
use cots_serve::protocol::QueryReq;
use cots_serve::Client;

const ITEMS_TOTAL: usize = 100_000;
const PHASE1: usize = 60_000;
const KILL_AFTER: usize = 80_000; // acked before SIGKILL
const ALPHABET: usize = 5_000;
const ALPHA: f64 = 1.2;
const SEED: u64 = 77;
const BATCH: usize = 1_000;
const CAPACITY: usize = 512;
const PHI: f64 = 0.01;

struct ServerProc {
    child: Child,
    addr: String,
    recovery_line: Option<String>,
}

fn spawn_server(dir: &Path) -> ServerProc {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cots-serve"))
        .args([
            "--addr",
            "127.0.0.1:0",
            "--shards",
            "2",
            "--capacity",
            &CAPACITY.to_string(),
            "--checkpoint-ms",
            "300",
            "--fsync",
            "grouped",
        ])
        .arg("--data-dir")
        .arg(dir)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .expect("spawn cots-serve");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut recovery_line = None;
    let mut addr = None;
    for _ in 0..16 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let line = line.trim().to_string();
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.to_string());
            break;
        }
        if line.starts_with("recovered ") {
            recovery_line = Some(line);
        }
    }
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            if reader.read_line(&mut sink).unwrap_or(0) == 0 {
                break;
            }
        }
    });
    ServerProc {
        child,
        addr: addr.expect("server never printed its listening line"),
        recovery_line,
    }
}

fn temp_data_dir() -> PathBuf {
    std::env::temp_dir().join(format!("cots-kill-recover-{}", std::process::id()))
}

#[test]
fn sigkill_mid_stream_recovers_within_reported_envelope() {
    let dir = temp_data_dir();
    let _ = std::fs::remove_dir_all(&dir);
    let full = StreamSpec::zipf(ITEMS_TOTAL, ALPHABET, ALPHA, SEED).generate();

    // ---- Life 1: ingest, checkpoint, ingest more, die by SIGKILL. ----
    let mut server = spawn_server(&dir);
    assert!(
        server.recovery_line.is_some(),
        "persistent server reports recovery even on an empty directory"
    );
    let mut client = Client::connect(&server.addr).unwrap();
    for batch in full[..PHASE1].chunks(BATCH) {
        client.ingest(batch).unwrap();
    }
    await_quiescence(&mut client, PHASE1 as u64).unwrap();
    let (watermark, total, bytes) = client.checkpoint().unwrap();
    assert!(watermark > 0);
    assert_eq!(total, PHASE1 as u64, "checkpoint covers the quiesced stream");
    assert!(bytes > 0);

    for batch in full[PHASE1..KILL_AFTER].chunks(BATCH) {
        client.ingest(batch).unwrap();
    }
    // Every batch above was acked (enqueued), but acked ≠ logged: whatever
    // the workers had not drained to the WAL dies with the process here.
    server.child.kill().unwrap();
    server.child.wait().unwrap();
    drop(client);

    // ---- Life 2: recover, quantify the loss, verify the envelope. ----
    let server = spawn_server(&dir);
    let line = server.recovery_line.clone().expect("recovery summary printed");
    let mut client = Client::connect(&server.addr).unwrap();
    let stats = client.stats().unwrap();
    let rec = stats.recovery.clone().expect("stats carry the recovery report");
    assert!(
        rec.checkpoint_watermark.is_some(),
        "a checkpoint was durable: {line}"
    );

    let sent = KILL_AFTER as u64;
    let recovered = rec.recovered_items;
    assert!(
        recovered >= PHASE1 as u64,
        "explicitly checkpointed items must survive SIGKILL: {rec:?}"
    );
    assert!(
        recovered <= sent,
        "recovery invented {} items: {rec:?}",
        recovered - sent
    );
    let lost = sent - recovered;

    // The freshly recovered state is published before the listener opens.
    let truth = ExactCounter::from_stream(&full[..KILL_AFTER]);
    let (entries, answer_total, stamp) = client.query(QueryReq::Frequent { phi: PHI }).unwrap();
    assert_eq!(answer_total, recovered);
    assert_eq!(stamp.staleness, 0, "recovered state publishes synchronously");
    for e in &entries {
        let sent_k = truth.count(&e.item);
        assert!(
            e.count - e.error <= sent_k,
            "over-report after crash: key {} guaranteed {} but only {} sent",
            e.item,
            e.count - e.error,
            sent_k
        );
        assert!(
            e.count + lost >= sent_k,
            "loss exceeds the reported bound: key {} count {} + lost {} < sent {}",
            e.item,
            e.count,
            lost,
            sent_k
        );
    }
    // Recall: deducting the *entire* lost mass from a key still clearing
    // the threshold means it was durably frequent — it must be reported.
    let threshold = Threshold::Fraction(PHI).resolve(recovered);
    for (key, sent_k) in truth.frequent(Threshold::Count(threshold + lost)) {
        assert!(
            entries.iter().any(|e| e.item == key),
            "durably frequent key {key} (sent {sent_k}, lost ≤ {lost}) missing from frequent(φ)"
        );
    }

    // ---- Life 2 continued: deterministic resume via cots-load. ----
    let tail = (ITEMS_TOTAL - KILL_AFTER) as u64;
    let status = Command::new(env!("CARGO_BIN_EXE_cots-load"))
        .args([
            "--addr",
            &server.addr,
            "--items",
            &tail.to_string(),
            "--resume",
            &(KILL_AFTER as u64).to_string(),
            "--alphabet",
            &ALPHABET.to_string(),
            "--alpha",
            &ALPHA.to_string(),
            "--seed",
            &SEED.to_string(),
            "--batch",
            &BATCH.to_string(),
            "--connections",
            "1",
        ])
        .status()
        .expect("spawn cots-load");
    assert!(status.success(), "cots-load --resume failed");

    client.set_timeout(Some(Duration::from_secs(30))).unwrap();
    let (_, final_total, stamp) = client.query(QueryReq::TopK { k: 1 }).unwrap();
    assert_eq!(
        final_total,
        recovered + tail,
        "resumed ingest lands on top of the recovered base"
    );
    assert_eq!(stamp.staleness, 0);

    client.shutdown().unwrap();
    drop(client);
    let mut child = server.child;
    child.wait().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}
