//! The TCP front-end: accept loop plus one of two I/O models.
//!
//! Connections speak the framed protocol of [`crate::frame`] /
//! [`crate::protocol`]. Two interchangeable I/O models sit behind the
//! same accept loop and wire format:
//!
//! * [`IoModel::Reactor`] (default) — nonblocking sockets driven by a
//!   small fixed pool of readiness-polling reactor threads (epoll on
//!   Linux, `poll(2)` fallback elsewhere; see [`crate::reactor`]). N
//!   connections cost N buffers, not N threads, lifting the connection
//!   ceiling from hundreds to tens of thousands.
//! * [`IoModel::Threads`] — the original thread-per-connection blocking
//!   model, kept for differential testing and as a portability escape
//!   hatch (`--io-model threads`).
//!
//! Shutdown is identical in both: a `SHUTDOWN` request flips the
//! service flag. The acceptor (polling with a short timeout) stops
//! accepting; connection threads or reactor threads notice the flag
//! within one poll interval, close their connections, and thereby close
//! their rings; shard workers drain and exit; the server returns.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::str::FromStr;
use std::sync::Arc;
use std::time::Duration;

use crate::frame::{is_timeout, read_frame, write_frame, write_payload};
use crate::protocol::{encode, Response};
use crate::reactor::ReactorPool;
use crate::service::{ConnState, Service, ServiceConfig};

/// How long a connection read blocks before re-checking the shutdown
/// flag.
const POLL: Duration = Duration::from_millis(25);

/// How long the acceptor sleeps when no connection is pending. Shorter
/// than [`POLL`]: the listen backlog is small (128 by default), so a
/// connect storm can overflow it — and suffer seconds-long SYN
/// retransmits — if the acceptor naps too long between drains.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Which connection I/O model the server runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoModel {
    /// Readiness-driven reactor threads over nonblocking sockets
    /// (default on Unix).
    Reactor,
    /// One blocking OS thread per connection (the pre-reactor model).
    Threads,
}

impl IoModel {
    /// The platform default: the reactor wherever a readiness backend
    /// exists (all Unix), blocking threads elsewhere.
    pub fn default_for_platform() -> Self {
        if cfg!(unix) {
            IoModel::Reactor
        } else {
            IoModel::Threads
        }
    }
}

impl FromStr for IoModel {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "reactor" => Ok(IoModel::Reactor),
            "threads" => Ok(IoModel::Threads),
            other => Err(format!(
                "unknown io model `{other}` (expected `reactor` or `threads`)"
            )),
        }
    }
}

impl std::fmt::Display for IoModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IoModel::Reactor => f.write_str("reactor"),
            IoModel::Threads => f.write_str("threads"),
        }
    }
}

/// Front-end I/O configuration: the model and its sizing.
#[derive(Debug, Clone, Copy)]
pub struct IoConfig {
    /// Which I/O model to run.
    pub model: IoModel,
    /// Reactor thread count (ignored under [`IoModel::Threads`]).
    /// Defaults to `available_parallelism` clamped to `2..=4`: the
    /// reactor is I/O-bound bookkeeping (the shard workers do the heavy
    /// lifting), but a *single* reactor thread serializes every
    /// connection's frame handling behind one scheduler entity, which
    /// measurably inflates round-trip latency versus the threaded model
    /// even on one core — two threads restore pipelining at negligible
    /// cost.
    pub reactor_threads: usize,
}

impl Default for IoConfig {
    fn default() -> Self {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        Self {
            model: IoModel::default_for_platform(),
            reactor_threads: cores.clamp(2, 4),
        }
    }
}

/// A bound server, ready to run.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    addr: SocketAddr,
    io: IoConfig,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the service behind it, with the platform-default I/O model.
    pub fn bind(addr: &str, config: ServiceConfig) -> io::Result<Self> {
        Self::bind_with(addr, config, IoConfig::default())
    }

    /// Bind with an explicit I/O configuration.
    pub fn bind_with(addr: &str, config: ServiceConfig, io: IoConfig) -> io::Result<Self> {
        let service = Service::start(config)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            service: Arc::new(service),
            addr,
            io,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle to the service, e.g. for in-process inspection in tests.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// The I/O configuration this server will run with.
    pub fn io_config(&self) -> IoConfig {
        self.io
    }

    /// Accept and serve until a `SHUTDOWN` request arrives, then drain
    /// and return. Consumes the server.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        match self.io.model {
            IoModel::Reactor => self.run_reactor(),
            IoModel::Threads => self.run_threads(),
        }
    }

    /// Reactor model: the acceptor hands streams to the pool; a fixed
    /// number of reactor threads drive all connections.
    fn run_reactor(self) -> io::Result<()> {
        let mut pool = ReactorPool::spawn(&self.service, self.io.reactor_threads)?;
        while !self.service.shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => pool.dispatch(stream),
                Err(e) if is_timeout(&e) => std::thread::sleep(ACCEPT_POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    // Surface the accept error, but unwind the pool and
                    // service first so shard workers don't leak.
                    self.service.begin_shutdown();
                    pool.join();
                    drain_service(self.service);
                    return Err(e);
                }
            }
        }
        drop(self.listener);
        pool.join();
        drain_service(self.service);
        Ok(())
    }

    /// Blocking model: one OS thread per connection.
    fn run_threads(self) -> io::Result<()> {
        let mut connections = Vec::new();
        while !self.service.shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let service = self.service.clone();
                    connections.push(
                        std::thread::Builder::new()
                            .name("cots-conn".into())
                            .spawn(move || serve_connection(stream, &service))?,
                    );
                }
                Err(e) if is_timeout(&e) => std::thread::sleep(ACCEPT_POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        drop(self.listener);
        for c in connections {
            let _ = c.join();
        }
        drain_service(self.service);
        Ok(())
    }
}

/// All connection/reactor threads (and their rings) are gone; drain the
/// shard workers and quiesce.
fn drain_service(service: Arc<Service>) {
    match Arc::try_unwrap(service) {
        Ok(service) => service.drain(),
        Err(service) => {
            // A caller still holds a handle; drain via the flag only.
            service.begin_shutdown();
        }
    }
}

/// Serve one connection until EOF, a protocol violation, or shutdown
/// (the blocking [`IoModel::Threads`] path).
fn serve_connection(stream: TcpStream, service: &Service) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reader = match stream.try_clone() {
        Ok(s) => io::BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = io::BufWriter::new(stream);
    let mut sender = service.connect();
    let mut conn = ConnState::new();
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(e) if is_timeout(&e) => {
                if service.shutdown_requested() {
                    return;
                }
                continue;
            }
            Err(_) => {
                // Framing violation: answer if the socket still works,
                // then drop the connection (resync is impossible).
                let resp = Response::Error {
                    message: "malformed frame".into(),
                };
                let _ = write_frame(&mut writer, &encode(&resp));
                return;
            }
        };
        let (response, close) = service.serve_frame(&payload, &mut conn, &mut sender);
        if write_payload(&mut writer, &response).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}
