//! The TCP front-end: accept loop and per-connection threads.
//!
//! Connections speak the framed protocol of [`crate::frame`] /
//! [`crate::protocol`]. Each connection thread decodes requests, hands
//! them to the shared [`Service`], and writes the response back; ingest
//! batches flow into the connection's own SPSC rings, so connection
//! threads never contend with each other on the ingest path.
//!
//! Shutdown: a `SHUTDOWN` request flips the service flag. The acceptor
//! (polling with a short timeout) stops accepting; connection threads
//! notice the flag at their next read timeout, close, and thereby close
//! their rings; shard workers drain and exit; the server returns.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use crate::frame::{is_timeout, read_frame, write_frame};
use crate::protocol::{decode, encode, Request, Response};
use crate::service::{Service, ServiceConfig};

/// How long a connection read blocks before re-checking the shutdown
/// flag, and how long the acceptor sleeps between polls.
const POLL: Duration = Duration::from_millis(25);

/// A bound server, ready to run.
pub struct Server {
    listener: TcpListener,
    service: Arc<Service>,
    addr: SocketAddr,
}

impl Server {
    /// Bind `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and start
    /// the service behind it.
    pub fn bind(addr: &str, config: ServiceConfig) -> io::Result<Self> {
        let service = Service::start(config)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            service: Arc::new(service),
            addr,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle to the service, e.g. for in-process inspection in tests.
    pub fn service(&self) -> &Arc<Service> {
        &self.service
    }

    /// Accept and serve until a `SHUTDOWN` request arrives, then drain
    /// and return. Consumes the server.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut connections = Vec::new();
        while !self.service.shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let service = self.service.clone();
                    connections.push(
                        std::thread::Builder::new()
                            .name("cots-conn".into())
                            .spawn(move || serve_connection(stream, &service))?,
                    );
                }
                Err(e) if is_timeout(&e) => std::thread::sleep(POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => return Err(e),
            }
        }
        drop(self.listener);
        for c in connections {
            let _ = c.join();
        }
        // All connection threads (and their rings) are gone; drain the
        // shard workers and quiesce.
        match Arc::try_unwrap(self.service) {
            Ok(service) => service.drain(),
            Err(service) => {
                // A caller still holds a handle; drain via the flag only.
                service.begin_shutdown();
            }
        }
        Ok(())
    }
}

/// Serve one connection until EOF, a protocol violation, or shutdown.
fn serve_connection(stream: TcpStream, service: &Service) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reader = match stream.try_clone() {
        Ok(s) => io::BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = io::BufWriter::new(stream);
    let mut sender = service.connect();
    loop {
        let payload = match read_frame(&mut reader) {
            Ok(Some(p)) => p,
            Ok(None) => return, // clean EOF
            Err(e) if is_timeout(&e) => {
                if service.shutdown_requested() {
                    return;
                }
                continue;
            }
            Err(_) => {
                // Framing violation: answer if the socket still works,
                // then drop the connection (resync is impossible).
                let resp = Response::Error {
                    message: "malformed frame".into(),
                };
                let _ = write_frame(&mut writer, &encode(&resp));
                return;
            }
        };
        let response = match decode::<Request>(&payload) {
            Ok(request) => service.handle(request, &mut sender),
            Err(e) => Response::Error {
                message: e.to_string(),
            },
        };
        if write_frame(&mut writer, &encode(&response)).is_err() {
            return;
        }
        if matches!(response, Response::ShuttingDown) {
            return;
        }
    }
}
