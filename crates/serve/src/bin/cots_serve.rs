//! `cots-serve` — the CoTS frequency-counting service.
//!
//! ```text
//! cots-serve [--addr 127.0.0.1:4040] [--shards 4] [--capacity 1000]
//!            [--window W] [--refresh-ms 20] [--queue-batches 64]
//! ```
//!
//! Prints `listening on <addr>` once ready (scripts wait for this line),
//! serves until a `SHUTDOWN` request arrives, drains, and exits 0.

use std::time::Duration;

use cots_serve::{Server, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: cots-serve [--addr HOST:PORT] [--shards N] [--capacity M] \
         [--window W] [--refresh-ms MS] [--queue-batches Q]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        usage();
    })
}

fn main() {
    let mut addr = "127.0.0.1:4040".to_string();
    let mut config = ServiceConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--shards" => config.shards = parse("--shards", args.next()),
            "--capacity" => config.capacity = parse("--capacity", args.next()),
            "--window" => config.window = Some(parse("--window", args.next())),
            "--refresh-ms" => {
                config.refresh = Duration::from_millis(parse("--refresh-ms", args.next()))
            }
            "--queue-batches" => config.queue_batches = parse("--queue-batches", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    if config.shards == 0 || config.capacity == 0 || config.queue_batches == 0 {
        eprintln!("--shards, --capacity and --queue-batches must be positive");
        usage();
    }
    let server = match Server::bind(&addr, config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cots-serve: cannot start on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("cots-serve: {e}");
        std::process::exit(1);
    }
}
