//! `cots-serve` — the CoTS frequency-counting service.
//!
//! ```text
//! cots-serve [--addr 127.0.0.1:4040] [--shards 4] [--capacity 1000]
//!            [--window W] [--refresh-ms 20] [--queue-batches 64]
//!            [--io-model reactor|threads] [--reactor-threads R]
//!            [--data-dir DIR] [--fsync always|grouped|off]
//!            [--checkpoint-ms 5000] [--wal-segment-mb 8]
//!            [--wal-records run|per-batch] [--standby]
//! ```
//!
//! `--io-model` selects the connection front-end: `reactor` (default) —
//! a fixed pool of readiness-polling threads (epoll on Linux) that
//! scales to tens of thousands of connections — or `threads`, the
//! blocking thread-per-connection model kept for differential testing.
//! `--reactor-threads` sizes the reactor pool (default:
//! `min(4, cores)`).
//!
//! With `--data-dir`, startup recovers the newest valid checkpoint plus
//! the WAL tail *before* binding the listener, prints a one-line recovery
//! summary, then logs every ingested batch and checkpoints on the
//! `--checkpoint-ms` cadence (0 disables the background checkpointer; the
//! `CHECKPOINT` wire op always works).
//!
//! `--standby` (requires `--data-dir`) starts the node as a replication
//! standby: it refuses ordinary `INGEST` and instead applies
//! `REPL_BATCH` / `REPL_SNAPSHOT` streams from a primary's WAL shipper
//! (see `docs/replication.md`), staying warm until `REPL_PROMOTE` flips
//! it to primary in place. The shipper itself rides the *primary*
//! process (`cots-member --peer`, or embed `cots_repl::spawn`).
//!
//! Prints `listening on <addr>` once ready (scripts wait for this line),
//! serves until a `SHUTDOWN` request arrives, drains (taking a final
//! checkpoint when persistent), and exits 0.

use std::time::Duration;

use cots_serve::persistence::PersistOptions;
use cots_serve::{IoConfig, Server, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: cots-serve [--addr HOST:PORT] [--shards N] [--capacity M] \
         [--window W] [--refresh-ms MS] [--queue-batches Q] \
         [--io-model reactor|threads] [--reactor-threads R] \
         [--data-dir DIR] [--fsync always|grouped|off] [--checkpoint-ms MS] \
         [--wal-segment-mb MB] [--wal-records run|per-batch] [--standby]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        usage();
    })
}

fn main() {
    let mut addr = "127.0.0.1:4040".to_string();
    let mut config = ServiceConfig::default();
    let mut io = IoConfig::default();
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut fsync = cots_persist::FsyncPolicy::default();
    let mut checkpoint_ms: u64 = 5_000;
    let mut wal_segment_mb: u64 = 8;
    let mut wal_runs = true;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--shards" => config.shards = parse("--shards", args.next()),
            "--capacity" => config.capacity = parse("--capacity", args.next()),
            "--window" => config.window = Some(parse("--window", args.next())),
            "--refresh-ms" => {
                config.refresh = Duration::from_millis(parse("--refresh-ms", args.next()))
            }
            "--queue-batches" => config.queue_batches = parse("--queue-batches", args.next()),
            "--io-model" => io.model = parse("--io-model", args.next()),
            "--reactor-threads" => io.reactor_threads = parse("--reactor-threads", args.next()),
            "--data-dir" => data_dir = Some(parse("--data-dir", args.next())),
            "--fsync" => fsync = parse("--fsync", args.next()),
            "--checkpoint-ms" => checkpoint_ms = parse("--checkpoint-ms", args.next()),
            "--wal-segment-mb" => wal_segment_mb = parse("--wal-segment-mb", args.next()),
            "--wal-records" => {
                wal_runs = match parse::<String>("--wal-records", args.next()).as_str() {
                    "run" => true,
                    "per-batch" => false,
                    other => {
                        eprintln!("--wal-records: expected `run` or `per-batch`, got `{other}`");
                        usage();
                    }
                }
            }
            "--standby" => config.standby = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    if config.shards == 0 || config.capacity == 0 || config.queue_batches == 0 {
        eprintln!("--shards, --capacity and --queue-batches must be positive");
        usage();
    }
    if config.standby && data_dir.is_none() {
        eprintln!("--standby needs --data-dir (replication ships the WAL)");
        usage();
    }
    if let Some(dir) = data_dir {
        let mut opts = PersistOptions::new(dir);
        opts.fsync = fsync;
        opts.checkpoint_every = Duration::from_millis(checkpoint_ms);
        opts.segment_bytes = wal_segment_mb.saturating_mul(1024 * 1024).max(1);
        opts.wal_runs = wal_runs;
        config.persist = Some(opts);
    }
    if io.reactor_threads == 0 {
        eprintln!("--reactor-threads must be positive");
        usage();
    }
    let server = match Server::bind_with(&addr, config, io) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cots-serve: cannot start on {addr}: {e}");
            std::process::exit(1);
        }
    };
    match io.model {
        cots_serve::IoModel::Reactor => {
            println!("io-model reactor ({} reactor threads)", io.reactor_threads)
        }
        cots_serve::IoModel::Threads => println!("io-model threads (one thread per connection)"),
    }
    if let Some(rec) = server.service().recovery_report() {
        println!(
            "recovered {} items (checkpoint {:?}, {} wal batches over {} segments, \
             {} torn frames, {} bytes dropped) in {:.3}s",
            rec.recovered_items,
            rec.checkpoint_watermark,
            rec.replayed_batches,
            rec.segments_scanned,
            rec.torn_frames,
            rec.dropped_bytes,
            rec.elapsed_secs
        );
    }
    println!("listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("cots-serve: {e}");
        std::process::exit(1);
    }
}
