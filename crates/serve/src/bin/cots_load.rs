//! `cots-load` — replay a deterministic Zipf stream against `cots-serve`
//! and optionally verify answers against exact ground truth.
//!
//! ```text
//! cots-load --addr 127.0.0.1:4040 --items 10000000 [--alphabet 100000]
//!           [--alpha 1.5] [--seed 42] [--resume R] [--batch 8192]
//!           [--connections 2] [--qps 0] [--phi 0.01] [--check]
//!           [--wire auto|json|binary] [--json PATH] [--shutdown]
//! ```
//!
//! `--wire` picks the `INGEST` encoding: `auto` (the default) uses BIN1
//! whenever the server advertises the `bin` feature, `json` forces the
//! JSON fallback, and `binary` *requires* BIN1 (failing loudly against
//! a server that cannot speak it).
//!
//! `--resume R` skips the first `R` items of the seeded stream and sends
//! the next `--items` after them — the deterministic way to continue a
//! replay against a server that recovered from a crash. Incompatible
//! with `--check`, which needs the full stream for ground truth.
//!
//! Exits non-zero on any protocol error or (with `--check`) any answer
//! outside the Space Saving guarantee.

use cots_serve::{Client, LoadConfig};

fn usage() -> ! {
    eprintln!(
        "usage: cots-load [--addr HOST:PORT] [--items N] [--alphabet A] [--alpha Z] \
         [--seed S] [--resume R] [--batch B] [--connections C] [--qps Q] [--phi PHI] \
         [--check] [--wire auto|json|binary] [--json PATH] [--shutdown]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        usage();
    })
}

fn main() {
    let mut config = LoadConfig::default();
    let mut json_path: Option<String> = None;
    let mut shutdown = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => config.addr = parse("--addr", args.next()),
            "--items" => config.items = parse("--items", args.next()),
            "--alphabet" => config.alphabet = parse("--alphabet", args.next()),
            "--alpha" => config.alpha = parse("--alpha", args.next()),
            "--seed" => config.seed = parse("--seed", args.next()),
            "--resume" => config.resume_from = parse("--resume", args.next()),
            "--batch" => config.batch = parse("--batch", args.next()),
            "--connections" => config.connections = parse("--connections", args.next()),
            "--qps" => config.qps = parse("--qps", args.next()),
            "--phi" => config.phi = parse("--phi", args.next()),
            "--check" => config.check = true,
            "--wire" => config.wire = parse("--wire", args.next()),
            "--json" => json_path = Some(parse("--json", args.next())),
            "--shutdown" => shutdown = true,
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }

    let report = match cots_serve::loadgen::run(&config) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cots-load: {e}");
            std::process::exit(1);
        }
    };

    println!(
        "streamed {} items in {:.2}s ({:.2} M items/s), {} overload retries, {} queries",
        report.items, report.elapsed_secs, report.meps, report.overload_retries,
        report.queries_issued
    );
    if let Some(lat) = &report.latency {
        println!(
            "latency: {} round trips, p50={}us p99={}us max={}us (worst connection p99={}us)",
            lat.samples, lat.p50_us, lat.p99_us, lat.max_us, lat.worst_connection_p99_us
        );
    }
    if let Some(wire) = &report.wire {
        println!(
            "wire: {} encoding, {} frames, encode p50={}ns p99={}ns, decode p50={}ns p99={}ns",
            wire.mode,
            wire.frames,
            wire.encode_p50_ns,
            wire.encode_p99_ns,
            wire.decode_p50_ns,
            wire.decode_p99_ns
        );
    }
    let mut failed = false;
    if let Some(check) = &report.check {
        println!(
            "check: phi={} threshold={} truly_frequent={} reported={} missed={} \
             bound_violations={} => {}",
            check.phi,
            check.threshold,
            check.truly_frequent,
            check.reported,
            check.missed,
            check.bound_violations,
            if check.passed { "PASS" } else { "FAIL" }
        );
        failed = !check.passed;
    }
    if let Some(path) = json_path {
        if let Err(e) = std::fs::write(&path, cots_core::json::to_string(&report)) {
            eprintln!("cots-load: cannot write {path}: {e}");
            failed = true;
        }
    }
    if shutdown {
        let stop = Client::connect(&config.addr)
            .map_err(cots_core::CotsError::from)
            .and_then(|mut c| c.shutdown());
        if let Err(e) = stop {
            eprintln!("cots-load: shutdown failed: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}
