//! # cots-serve
//!
//! A network-facing streaming ingest + live-query service over the CoTS
//! engine: the deployment shape the paper's line-rate argument is about.
//! Clients stream batched keys over TCP and ask `frequent(φ)` / top-k /
//! point-frequency questions of the live summary without ever stopping
//! ingestion.
//!
//! ## Architecture
//!
//! ```text
//! clients ──frames──▶ reactor threads (epoll) ──SPSC rings──▶ shard workers
//!                        │    ▲                                   │
//!                      QUERY  │ answer                      delegate_batch
//!                        ▼    │                                   ▼
//!                   SnapshotPublisher ◀──capture──── CotsEngine / JumpingWindow
//! ```
//!
//! * **Wire protocol** ([`frame`], [`protocol`], [`bin1`]):
//!   length-prefixed frames carrying externally-tagged JSON
//!   (`cots_core::json`): `INGEST`, `QUERY`, `STATS`, `SNAPSHOT`,
//!   `SHUTDOWN`. Peers that negotiate the `"bin"` feature at `HELLO`
//!   may carry the bulk ops (`INGEST`, `REPL_BATCH`, `SNAPSHOT_PAGE`)
//!   as BIN1 fixed-LE binary payloads instead.
//! * **Event-driven front-end** ([`reactor`], [`server`]): by default a
//!   small fixed pool of reactor threads drives every connection via
//!   readiness polling (epoll on Linux, `poll(2)` fallback) and
//!   incremental frame assembly, so N connections cost N buffers rather
//!   than N OS threads; `--io-model threads` restores the blocking
//!   thread-per-connection model for differential testing.
//! * **Sharded ingest** ([`spsc`], [`shard`]): per-(producer, shard)
//!   bounded SPSC rings feed workers that call
//!   `CotsEngine::delegate_batch`; full rings answer `OVERLOADED`
//!   (backpressure) instead of buffering unboundedly, and shutdown drains
//!   every ring before the engine finalizes. Under the reactor each
//!   reactor *thread* is one producer (R×shards rings); under the
//!   blocking model each connection is (N×shards rings).
//! * **Live queries** ([`service`], `cots::publish`): an epoch-stamped
//!   snapshot publisher refreshes a consistent [`cots_core::Snapshot`]
//!   off the hot path; every answer reports its epoch and staleness
//!   bound.
//! * **Durability** ([`persistence`], `cots-persist`): with `--data-dir`
//!   the service group-commits every drained batch to a segmented WAL,
//!   checkpoints the merged summary on a cadence (and on the
//!   `CHECKPOINT` wire op), and recovers checkpoint + WAL tail *before*
//!   the listener opens, keeping the Space-Saving error envelope over
//!   everything recovered.
//! * **Binaries**: `cots-serve` (the server) and `cots-load` (replay a
//!   `datagen` Zipf stream over the wire and check answers against exact
//!   ground truth).

#![deny(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod bin1;
pub mod client;
pub mod frame;
pub mod loadgen;
pub mod persistence;
pub mod protocol;
pub mod reactor;
pub mod server;
pub mod service;
pub mod shard;
pub mod spsc;

pub use bin1::Bin1Error;
pub use client::Client;
pub use frame::{FrameAssembler, FrameError, Payload, BIN1_MAGIC, MAX_FRAME};
pub use loadgen::{LatencySummary, LoadConfig, LoadReport, WireMode, WireSummary};
pub use persistence::{PersistOptions, Persistence};
pub use protocol::{
    QueryReq, QueryStamp, ReplFrame, Request, Response, MAX_PAGE_ENTRIES, MIN_PROTO_VERSION,
    PROTO_VERSION,
};
pub use server::{IoConfig, IoModel, Server};
pub use service::{ConnState, Reply, Service, ServiceConfig};
pub use shard::{Backend, SendOutcome, ShardPool, ShardSender};
