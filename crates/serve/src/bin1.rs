//! BIN1: the negotiated binary encoding for hot-path frames.
//!
//! JSON (see [`crate::protocol`]) is the default wire encoding and the
//! only one for control and query operations. For the bulk paths —
//! `INGEST`/`IngestAck`/`Overloaded`, `REPL_BATCH`/`REPL_ACK`, and
//! `SNAPSHOT_PAGE` — a peer that negotiated the `"bin"` feature at
//! `HELLO` time (protocol version ≥ 4) may instead send BIN1 payloads,
//! where keys travel as fixed-width little-endian `u64` runs instead of
//! per-key decimal text. Responses mirror the request's encoding, with
//! one carve-out: errors are always JSON (`Response::Error` carries
//! free text), so a BIN1 sender must be ready to decode either.
//!
//! Payload layout (after the 4-byte frame length prefix):
//!
//! ```text
//! magic   1 byte   0xB1 ([`crate::frame::BIN1_MAGIC`])
//! tag     1 byte   operation tag (`TAG_*` below)
//! body    ...      fixed little-endian fields, tag-specific
//! ```
//!
//! Bodies (all integers little-endian; `count`-prefixed runs must
//! consume the rest of the payload exactly):
//!
//! ```text
//! INGEST             count u32, keys u64 × count
//! INGEST_ACK         enqueued u64
//! OVERLOADED         (empty)
//! REPL_BATCH         lineage u64, nbatches u32,
//!                    then per batch: seq u64, nkeys u32, keys u64 × nkeys
//! REPL_ACK           ack_seq u64
//! PAGE_REQ           since_epoch u64, offset u64, limit u64
//! PAGE_RESP          flags u8 (bit0 done, bit1 unchanged, bit2 rotations
//!                    present), offset u64, total_entries u64, total u64,
//!                    epoch u64, captured_total u64, staleness u64,
//!                    [rotations u64 iff flags bit2], nentries u32,
//!                    then per entry: item u64, count u64, error u64
//! ```
//!
//! Decoding is **total** and cap-checked: counts are validated against
//! the bytes actually present (and [`MAX_FRAME`]) before any
//! allocation, so a hostile count can neither panic nor amplify memory.
//! Trailing bytes after a complete body are rejected — one payload is
//! exactly one message.
//!
//! AUDIT: total — every byte here is attacker-controlled; enforced by
//! `cargo xtask audit` (lint-totality).

use crate::frame::{BIN1_MAGIC, MAX_FRAME};
use crate::protocol::{QueryStamp, ReplFrame, Request, Response};
use cots_core::CounterEntry;

/// Operation tag: `Request::Ingest`.
pub const TAG_INGEST: u8 = 0x01;
/// Operation tag: `Response::IngestAck`.
pub const TAG_INGEST_ACK: u8 = 0x02;
/// Operation tag: `Response::Overloaded`.
pub const TAG_OVERLOADED: u8 = 0x03;
/// Operation tag: `Request::ReplBatch`.
pub const TAG_REPL_BATCH: u8 = 0x04;
/// Operation tag: `Response::ReplAck`.
pub const TAG_REPL_ACK: u8 = 0x05;
/// Operation tag: `Request::SnapshotPage`.
pub const TAG_PAGE_REQ: u8 = 0x06;
/// Operation tag: `Response::SnapshotPage`.
pub const TAG_PAGE_RESP: u8 = 0x07;

/// Why a BIN1 payload failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Bin1Error {
    /// The payload ends before its announced body does.
    Truncated,
    /// The first byte is not [`BIN1_MAGIC`].
    BadMagic,
    /// The operation tag is unknown, or known but not valid in this
    /// position (a response tag in a request, or vice versa).
    BadTag(u8),
    /// The body violates the layout (bad count, trailing bytes, ...).
    Malformed(&'static str),
}

impl std::fmt::Display for Bin1Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Bin1Error::Truncated => write!(f, "BIN1 payload truncated"),
            Bin1Error::BadMagic => write!(f, "BIN1 magic byte missing"),
            Bin1Error::BadTag(t) => write!(f, "BIN1 tag {t:#04x} not valid here"),
            Bin1Error::Malformed(m) => write!(f, "malformed BIN1 payload: {m}"),
        }
    }
}

impl std::error::Error for Bin1Error {}

/// Sequential little-endian reader over one payload. All accessors are
/// total: running past the end yields [`Bin1Error::Truncated`].
struct Cur<'a> {
    // PANIC-OK: `&'a [u8]` is a type position, not indexing — the
    // lifetime's trailing letter trips the lexical heuristic.
    buf: &'a [u8],
    off: usize,
}

impl<'a> Cur<'a> {
    // PANIC-OK: type position again (see the field above).
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, off: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len().saturating_sub(self.off)
    }

    fn u8(&mut self) -> Result<u8, Bin1Error> {
        let b = *self.buf.get(self.off).ok_or(Bin1Error::Truncated)?;
        self.off += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, Bin1Error> {
        let end = self.off.checked_add(4).ok_or(Bin1Error::Truncated)?;
        let bytes = self.buf.get(self.off..end).ok_or(Bin1Error::Truncated)?;
        self.off = end;
        Ok(u32::from_le_bytes(bytes.try_into().unwrap_or([0; 4])))
    }

    fn u64(&mut self) -> Result<u64, Bin1Error> {
        let end = self.off.checked_add(8).ok_or(Bin1Error::Truncated)?;
        let bytes = self.buf.get(self.off..end).ok_or(Bin1Error::Truncated)?;
        self.off = end;
        Ok(u64::from_le_bytes(bytes.try_into().unwrap_or([0; 8])))
    }

    /// A `u64` that must fit a `usize` (offsets and limits).
    fn u64_usize(&mut self) -> Result<usize, Bin1Error> {
        usize::try_from(self.u64()?).map_err(|_| Bin1Error::Malformed("value exceeds usize"))
    }

    /// Read `count` little-endian `u64` keys. The count is validated
    /// against the bytes actually remaining before allocating.
    fn keys(&mut self, count: usize) -> Result<Vec<u64>, Bin1Error> {
        let bytes = count.checked_mul(8).ok_or(Bin1Error::Malformed("key count overflow"))?;
        if bytes > MAX_FRAME {
            return Err(Bin1Error::Malformed("key run exceeds frame cap"));
        }
        let end = self.off.checked_add(bytes).ok_or(Bin1Error::Truncated)?;
        let run = self.buf.get(self.off..end).ok_or(Bin1Error::Truncated)?;
        self.off = end;
        Ok(run
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap_or([0; 8])))
            .collect())
    }

    /// One payload is exactly one message: trailing bytes are an error.
    fn done(&self) -> Result<(), Bin1Error> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(Bin1Error::Malformed("trailing bytes after body"))
        }
    }
}

/// Consume the magic + tag header, returning the tag.
fn header(cur: &mut Cur<'_>) -> Result<u8, Bin1Error> {
    if cur.u8()? != BIN1_MAGIC {
        return Err(Bin1Error::BadMagic);
    }
    cur.u8()
}

fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Encode an `INGEST` request: the hot-path encoder, one `memcpy`-like
/// pass over the keys with no per-key formatting.
pub fn encode_ingest(keys: &[u64]) -> Vec<u8> {
    let mut out = Vec::with_capacity(6 + keys.len() * 8);
    out.push(BIN1_MAGIC);
    out.push(TAG_INGEST);
    push_u32(&mut out, keys.len() as u32);
    for k in keys {
        push_u64(&mut out, *k);
    }
    out
}

/// Encode an `IngestAck` response.
pub fn encode_ingest_ack(enqueued: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    out.push(BIN1_MAGIC);
    out.push(TAG_INGEST_ACK);
    push_u64(&mut out, enqueued);
    out
}

/// Encode an `Overloaded` response.
pub fn encode_overloaded() -> Vec<u8> {
    vec![BIN1_MAGIC, TAG_OVERLOADED]
}

/// Encode a `REPL_BATCH` request from protocol frames.
pub fn encode_repl_batch(lineage: u64, batches: &[ReplFrame]) -> Vec<u8> {
    let keys: usize = batches.iter().map(|b| b.keys.len()).sum();
    let mut out = Vec::with_capacity(14 + batches.len() * 12 + keys * 8);
    out.push(BIN1_MAGIC);
    out.push(TAG_REPL_BATCH);
    push_u64(&mut out, lineage);
    push_u32(&mut out, batches.len() as u32);
    for b in batches {
        push_u64(&mut out, b.seq);
        push_u32(&mut out, b.keys.len() as u32);
        for k in &b.keys {
            push_u64(&mut out, *k);
        }
    }
    out
}

/// Encode a `REPL_BATCH` request straight from `(seq, keys)` runs —
/// the shipper's path, no intermediate [`ReplFrame`] clones needed.
pub fn encode_repl_batch_runs(lineage: u64, batches: &[(u64, &[u64])]) -> Vec<u8> {
    let keys: usize = batches.iter().map(|(_, k)| k.len()).sum();
    let mut out = Vec::with_capacity(14 + batches.len() * 12 + keys * 8);
    out.push(BIN1_MAGIC);
    out.push(TAG_REPL_BATCH);
    push_u64(&mut out, lineage);
    push_u32(&mut out, batches.len() as u32);
    for (seq, run) in batches {
        push_u64(&mut out, *seq);
        push_u32(&mut out, run.len() as u32);
        for k in *run {
            push_u64(&mut out, *k);
        }
    }
    out
}

/// Encode a `REPL_ACK` response.
pub fn encode_repl_ack(ack_seq: u64) -> Vec<u8> {
    let mut out = Vec::with_capacity(10);
    out.push(BIN1_MAGIC);
    out.push(TAG_REPL_ACK);
    push_u64(&mut out, ack_seq);
    out
}

/// Encode a `SNAPSHOT_PAGE` request.
pub fn encode_page_req(since_epoch: u64, offset: usize, limit: usize) -> Vec<u8> {
    let mut out = Vec::with_capacity(26);
    out.push(BIN1_MAGIC);
    out.push(TAG_PAGE_REQ);
    push_u64(&mut out, since_epoch);
    push_u64(&mut out, offset as u64);
    push_u64(&mut out, limit as u64);
    out
}

/// Encode a `SNAPSHOT_PAGE` response: entries travel as bare
/// `(item, count, error)` `u64` triples.
#[allow(clippy::too_many_arguments)]
pub fn encode_page_resp(
    entries: &[CounterEntry<u64>],
    offset: usize,
    total_entries: usize,
    total: u64,
    done: bool,
    unchanged: bool,
    stamp: QueryStamp,
) -> Vec<u8> {
    let mut out = Vec::with_capacity(64 + entries.len() * 24);
    out.push(BIN1_MAGIC);
    out.push(TAG_PAGE_RESP);
    let mut flags = 0u8;
    if done {
        flags |= 1;
    }
    if unchanged {
        flags |= 2;
    }
    if stamp.rotations.is_some() {
        flags |= 4;
    }
    out.push(flags);
    push_u64(&mut out, offset as u64);
    push_u64(&mut out, total_entries as u64);
    push_u64(&mut out, total);
    push_u64(&mut out, stamp.epoch);
    push_u64(&mut out, stamp.captured_total);
    push_u64(&mut out, stamp.staleness);
    if let Some(r) = stamp.rotations {
        push_u64(&mut out, r);
    }
    push_u32(&mut out, entries.len() as u32);
    for e in entries {
        push_u64(&mut out, e.item);
        push_u64(&mut out, e.count);
        push_u64(&mut out, e.error);
    }
    out
}

/// Encode a request as BIN1, if it has a binary form. Control and
/// query operations return `None` (JSON is their only encoding).
pub fn encode_request(req: &Request) -> Option<Vec<u8>> {
    match req {
        Request::Ingest { keys } => Some(encode_ingest(keys)),
        Request::ReplBatch { lineage, batches } => Some(encode_repl_batch(*lineage, batches)),
        Request::SnapshotPage {
            since_epoch,
            offset,
            limit,
        } => Some(encode_page_req(*since_epoch, *offset, *limit)),
        _ => None,
    }
}

/// Encode a response as BIN1, if it has a binary form.
pub fn encode_response(resp: &Response) -> Option<Vec<u8>> {
    match resp {
        Response::IngestAck { enqueued } => Some(encode_ingest_ack(*enqueued)),
        Response::Overloaded => Some(encode_overloaded()),
        Response::ReplAck { ack_seq } => Some(encode_repl_ack(*ack_seq)),
        Response::SnapshotPage {
            entries,
            offset,
            total_entries,
            total,
            done,
            unchanged,
            stamp,
        } => Some(encode_page_resp(
            entries,
            *offset,
            *total_entries,
            *total,
            *done,
            *unchanged,
            *stamp,
        )),
        _ => None,
    }
}

/// Decode a BIN1 request payload. Total: any byte sequence either
/// decodes or reports a [`Bin1Error`], never a panic.
pub fn decode_request(buf: &[u8]) -> Result<Request, Bin1Error> {
    let mut cur = Cur::new(buf);
    match header(&mut cur)? {
        TAG_INGEST => {
            let count = cur.u32()? as usize;
            let keys = cur.keys(count)?;
            cur.done()?;
            Ok(Request::Ingest { keys })
        }
        TAG_REPL_BATCH => {
            let lineage = cur.u64()?;
            let nbatches = cur.u32()? as usize;
            // Each batch needs ≥ 12 bytes: bound the count by the bytes
            // actually present before allocating.
            if nbatches > cur.remaining() / 12 {
                return Err(Bin1Error::Malformed("batch count exceeds payload"));
            }
            let mut batches = Vec::with_capacity(nbatches);
            for _ in 0..nbatches {
                let seq = cur.u64()?;
                let nkeys = cur.u32()? as usize;
                let keys = cur.keys(nkeys)?;
                batches.push(ReplFrame { seq, keys });
            }
            cur.done()?;
            Ok(Request::ReplBatch { lineage, batches })
        }
        TAG_PAGE_REQ => {
            let since_epoch = cur.u64()?;
            let offset = cur.u64_usize()?;
            let limit = cur.u64_usize()?;
            cur.done()?;
            Ok(Request::SnapshotPage {
                since_epoch,
                offset,
                limit,
            })
        }
        t => Err(Bin1Error::BadTag(t)),
    }
}

/// Decode a BIN1 response payload. Total; see [`decode_request`].
pub fn decode_response(buf: &[u8]) -> Result<Response, Bin1Error> {
    let mut cur = Cur::new(buf);
    match header(&mut cur)? {
        TAG_INGEST_ACK => {
            let enqueued = cur.u64()?;
            cur.done()?;
            Ok(Response::IngestAck { enqueued })
        }
        TAG_OVERLOADED => {
            cur.done()?;
            Ok(Response::Overloaded)
        }
        TAG_REPL_ACK => {
            let ack_seq = cur.u64()?;
            cur.done()?;
            Ok(Response::ReplAck { ack_seq })
        }
        TAG_PAGE_RESP => {
            let flags = cur.u8()?;
            if flags & !0b111 != 0 {
                return Err(Bin1Error::Malformed("unknown page flags"));
            }
            let offset = cur.u64_usize()?;
            let total_entries = cur.u64_usize()?;
            let total = cur.u64()?;
            let epoch = cur.u64()?;
            let captured_total = cur.u64()?;
            let staleness = cur.u64()?;
            let rotations = if flags & 4 != 0 { Some(cur.u64()?) } else { None };
            let nentries = cur.u32()? as usize;
            let need = nentries
                .checked_mul(24)
                .ok_or(Bin1Error::Malformed("entry count overflow"))?;
            if need != cur.remaining() {
                return Err(Bin1Error::Malformed("entry run length mismatch"));
            }
            let mut entries = Vec::with_capacity(nentries);
            for _ in 0..nentries {
                let item = cur.u64()?;
                let count = cur.u64()?;
                let error = cur.u64()?;
                // Struct literal, not `CounterEntry::new`: its
                // `error <= count` debug assertion must not be reachable
                // from wire bytes (the JSON decoder is literal too).
                entries.push(CounterEntry { item, count, error });
            }
            cur.done()?;
            Ok(Response::SnapshotPage {
                entries,
                offset,
                total_entries,
                total,
                done: flags & 1 != 0,
                unchanged: flags & 2 != 0,
                stamp: QueryStamp {
                    epoch,
                    captured_total,
                    staleness,
                    rotations,
                },
            })
        }
        t => Err(Bin1Error::BadTag(t)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stamp() -> QueryStamp {
        QueryStamp {
            epoch: 9,
            captured_total: 1_000,
            staleness: 17,
            rotations: Some(3),
        }
    }

    #[test]
    fn ingest_round_trips() {
        for keys in [vec![], vec![42], vec![0, 1, u64::MAX, 7]] {
            let req = Request::Ingest { keys };
            let bytes = encode_request(&req).unwrap();
            assert_eq!(decode_request(&bytes).unwrap(), req);
        }
    }

    #[test]
    fn repl_batch_round_trips() {
        let req = Request::ReplBatch {
            lineage: 5,
            batches: vec![
                ReplFrame {
                    seq: 10,
                    keys: vec![1, 2, 3],
                },
                ReplFrame {
                    seq: 11,
                    keys: vec![],
                },
                ReplFrame {
                    seq: 12,
                    keys: vec![u64::MAX],
                },
            ],
        };
        let bytes = encode_request(&req).unwrap();
        assert_eq!(decode_request(&bytes).unwrap(), req);
        // The zero-copy run encoder produces identical bytes.
        let runs: Vec<(u64, &[u64])> = match &req {
            Request::ReplBatch { batches, .. } => {
                batches.iter().map(|b| (b.seq, b.keys.as_slice())).collect()
            }
            _ => unreachable!(),
        };
        assert_eq!(encode_repl_batch_runs(5, &runs), bytes);
    }

    #[test]
    fn page_round_trips() {
        let req = Request::SnapshotPage {
            since_epoch: 4,
            offset: 128,
            limit: 1_024,
        };
        let bytes = encode_request(&req).unwrap();
        assert_eq!(decode_request(&bytes).unwrap(), req);

        for rotations in [None, Some(6)] {
            let resp = Response::SnapshotPage {
                entries: vec![
                    CounterEntry::new(1u64, 100, 3),
                    CounterEntry::new(u64::MAX, 50, 0),
                ],
                offset: 128,
                total_entries: 130,
                total: 5_000,
                done: true,
                unchanged: false,
                stamp: QueryStamp {
                    rotations,
                    ..stamp()
                },
            };
            let bytes = encode_response(&resp).unwrap();
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn acks_round_trip() {
        for resp in [
            Response::IngestAck { enqueued: 4096 },
            Response::Overloaded,
            Response::ReplAck { ack_seq: u64::MAX },
        ] {
            let bytes = encode_response(&resp).unwrap();
            assert_eq!(decode_response(&bytes).unwrap(), resp);
        }
    }

    #[test]
    fn json_only_ops_have_no_binary_form() {
        assert!(encode_request(&Request::Stats).is_none());
        assert!(encode_request(&Request::Shutdown).is_none());
        assert!(encode_response(&Response::ShuttingDown).is_none());
        assert!(encode_response(&Response::Error {
            message: "no".into()
        })
        .is_none());
    }

    #[test]
    fn truncations_never_panic() {
        let bytes = encode_ingest(&[1, 2, 3]);
        for cut in 0..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err(), "cut at {cut}");
        }
        let bytes = encode_repl_batch(
            7,
            &[ReplFrame {
                seq: 1,
                keys: vec![9, 8],
            }],
        );
        for cut in 0..bytes.len() {
            assert!(decode_request(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn hostile_counts_are_rejected_before_allocating() {
        // An INGEST claiming u32::MAX keys with a 2-byte body.
        let mut bytes = vec![BIN1_MAGIC, TAG_INGEST];
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        bytes.extend_from_slice(&[0, 0]);
        assert!(decode_request(&bytes).is_err());

        // A REPL_BATCH claiming u32::MAX batches.
        let mut bytes = vec![BIN1_MAGIC, TAG_REPL_BATCH];
        bytes.extend_from_slice(&0u64.to_le_bytes());
        bytes.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_request(&bytes).is_err());

        // A page response claiming more entries than bytes.
        let mut bytes = encode_page_resp(&[], 0, 0, 0, true, false, QueryStamp::default());
        let at = bytes.len() - 4;
        bytes[at..].copy_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_response(&bytes).is_err());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = encode_ingest(&[1]);
        bytes.push(0);
        assert_eq!(
            decode_request(&bytes),
            Err(Bin1Error::Malformed("trailing bytes after body"))
        );
    }

    #[test]
    fn wrong_position_tags_are_rejected() {
        let ack = encode_ingest_ack(1);
        assert_eq!(decode_request(&ack), Err(Bin1Error::BadTag(TAG_INGEST_ACK)));
        let ingest = encode_ingest(&[1]);
        assert_eq!(
            decode_response(&ingest),
            Err(Bin1Error::BadTag(TAG_INGEST))
        );
    }

    #[test]
    fn bad_magic_and_empty_are_rejected() {
        assert_eq!(decode_request(&[]), Err(Bin1Error::Truncated));
        assert_eq!(decode_request(&[0x00, TAG_INGEST]), Err(Bin1Error::BadMagic));
        assert_eq!(decode_request(&[BIN1_MAGIC]), Err(Bin1Error::Truncated));
    }
}
