//! Length-prefixed framing for the wire protocol.
//!
//! Every message on a connection — request or response — is one *frame*:
//!
//! ```text
//! length  4 bytes   little-endian u32, byte length of the payload
//! payload length bytes, UTF-8 JSON (see [`crate::protocol`]) or a
//!         BIN1 binary payload (see [`crate::bin1`]) whose first byte
//!         is [`BIN1_MAGIC`]
//! ```
//!
//! The two payload encodings are distinguished by the first payload
//! byte: `0xB1` can never begin well-formed UTF-8 (it is a continuation
//! byte), so a JSON payload can never be mistaken for BIN1 and — by the
//! same argument — a server that predates BIN1 rejects a binary frame
//! cleanly as "not UTF-8" instead of misparsing it. Whether a peer is
//! *allowed* to send BIN1 is negotiated at HELLO time and enforced by
//! the dispatch layer, not here; the framing layer is encoding-neutral.
//!
//! Frames are capped at [`MAX_FRAME`] bytes so a corrupt or hostile length
//! prefix cannot make the server allocate unbounded memory. Decoding is
//! total: truncated, oversized, or garbage input yields an error, never a
//! panic, and the connection is closed in response.
//!
//! AUDIT: total — every byte here is attacker-controlled; enforced by
//! `cargo xtask audit` (lint-totality).

use std::io::{self, Read, Write};

/// Maximum payload size in bytes (16 MiB). A 16 Ki-key ingest batch
/// encodes to well under 400 KiB of JSON (and an eighth of that as
/// BIN1), so this leaves two orders of magnitude of headroom while
/// still bounding per-connection memory.
pub const MAX_FRAME: usize = 16 * 1024 * 1024;

/// First byte of every BIN1 payload. `0xB1` is a UTF-8 continuation
/// byte, so no JSON payload can start with it and pre-BIN1 peers reject
/// it as malformed rather than misreading it.
pub const BIN1_MAGIC: u8 = 0xB1;

/// One frame's payload: UTF-8 JSON text, or a BIN1 binary message.
///
/// `Bin` payloads always start with [`BIN1_MAGIC`] (the decode side
/// classifies on that byte; the encode side asserts it).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// UTF-8 JSON text (the default encoding; always accepted).
    Json(String),
    /// BIN1 binary bytes, first byte [`BIN1_MAGIC`] (negotiated).
    Bin(Vec<u8>),
}

impl Payload {
    /// The raw payload bytes as they travel on the wire.
    pub fn bytes(&self) -> &[u8] {
        match self {
            Payload::Json(s) => s.as_bytes(),
            Payload::Bin(b) => b.as_slice(),
        }
    }

    /// Payload length in bytes.
    pub fn len(&self) -> usize {
        self.bytes().len()
    }

    /// Whether the payload is empty (only possible for `Json`).
    pub fn is_empty(&self) -> bool {
        self.bytes().is_empty()
    }

    /// Whether this is a BIN1 payload.
    pub fn is_bin(&self) -> bool {
        matches!(self, Payload::Bin(_))
    }
}

impl From<String> for Payload {
    fn from(s: String) -> Self {
        Payload::Json(s)
    }
}

/// Why a frame could not be decoded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrameError {
    /// The buffer ends before the announced payload (streaming decoders
    /// treat this as "wait for more bytes"; blocking readers as EOF).
    Incomplete,
    /// The length prefix exceeds [`MAX_FRAME`].
    TooLarge(usize),
    /// The payload is neither valid UTF-8 nor BIN1.
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Incomplete => write!(f, "frame truncated"),
            FrameError::TooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds the {MAX_FRAME}-byte cap")
            }
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Encode a JSON payload into a self-contained frame.
///
/// Panics if the payload exceeds [`MAX_FRAME`]; callers produce payloads
/// they sized themselves.
pub fn encode_frame(payload: &str) -> Vec<u8> {
    // PANIC-OK: the *encode* side frames payloads the server itself
    // produced; exceeding MAX_FRAME is a caller bug, documented above,
    // and must not be silently truncated. Decode stays total.
    assert!(payload.len() <= MAX_FRAME, "payload exceeds MAX_FRAME");
    let mut out = Vec::with_capacity(4 + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(payload.as_bytes());
    out
}

/// Encode either payload kind into a self-contained frame.
///
/// Panics on the same caller bugs as [`encode_frame`]: an oversized
/// payload, or a `Bin` payload not starting with [`BIN1_MAGIC`] (which
/// the receiver would misclassify as JSON).
pub fn encode_payload(payload: &Payload) -> Vec<u8> {
    let bytes = payload.bytes();
    // PANIC-OK: encode-side caller bugs, as in `encode_frame`.
    assert!(bytes.len() <= MAX_FRAME, "payload exceeds MAX_FRAME");
    if payload.is_bin() {
        // PANIC-OK: a Bin payload without the magic is a caller bug —
        // the peer would decode it as JSON.
        assert!(bytes.first() == Some(&BIN1_MAGIC), "BIN1 payload missing magic");
    }
    let mut out = Vec::with_capacity(4 + bytes.len());
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
    out
}

/// Classify raw payload bytes as JSON or BIN1.
///
/// Total: BIN1 when the first byte is [`BIN1_MAGIC`], otherwise the
/// bytes must be valid UTF-8.
fn classify(body: &[u8]) -> Result<Payload, FrameError> {
    if body.first() == Some(&BIN1_MAGIC) {
        return Ok(Payload::Bin(body.to_vec()));
    }
    let text = std::str::from_utf8(body)
        .map_err(|e| FrameError::Malformed(format!("payload is not UTF-8: {e}")))?;
    Ok(Payload::Json(text.to_string()))
}

/// Decode one frame from the front of `buf`.
///
/// Returns the payload and the number of bytes consumed. Errors are total:
/// any byte sequence either decodes, reports [`FrameError::Incomplete`]
/// (more bytes needed), or is rejected.
pub fn decode_frame(buf: &[u8]) -> Result<(Payload, usize), FrameError> {
    let prefix = buf.get(..4).ok_or(FrameError::Incomplete)?;
    let len = u32::from_le_bytes(prefix.try_into().map_err(|_| FrameError::Incomplete)?) as usize;
    if len > MAX_FRAME {
        return Err(FrameError::TooLarge(len));
    }
    let body = buf.get(4..4 + len).ok_or(FrameError::Incomplete)?;
    Ok((classify(body)?, 4 + len))
}

/// Write one JSON frame to a blocking stream.
pub fn write_frame(w: &mut impl Write, payload: &str) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            FrameError::TooLarge(payload.len()).to_string(),
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload.as_bytes())?;
    w.flush()
}

/// Write one frame of either encoding to a blocking stream.
pub fn write_payload(w: &mut impl Write, payload: &Payload) -> io::Result<()> {
    let bytes = payload.bytes();
    if bytes.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            FrameError::TooLarge(bytes.len()).to_string(),
        ));
    }
    if payload.is_bin() && bytes.first() != Some(&BIN1_MAGIC) {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "BIN1 payload missing magic",
        ));
    }
    w.write_all(&(bytes.len() as u32).to_le_bytes())?;
    w.write_all(bytes)?;
    w.flush()
}

/// Incremental frame assembly over arbitrarily split byte deliveries.
///
/// The reactor feeds whatever the socket produced — one byte, half a
/// header, three frames and a prefix — into [`FrameAssembler::extend`]
/// and pulls complete payloads out of [`FrameAssembler::next_frame`].
/// Decoding delegates to [`decode_frame`], so the accepted language is
/// byte-for-byte identical to the blocking [`read_frame`] path (the
/// proptests in `tests/wire_props.rs` pin this equivalence down).
///
/// Errors are terminal for the stream: once the front of the buffer is
/// not a valid frame, resynchronization is impossible and the caller
/// must drop the connection.
#[derive(Debug, Default)]
pub struct FrameAssembler {
    /// Bytes received but not yet decoded. The region before `consumed`
    /// has been handed out already and is reclaimed lazily.
    buf: Vec<u8>,
    /// Decoded-and-returned prefix length of `buf`.
    consumed: usize,
}

impl FrameAssembler {
    /// An empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append newly received bytes.
    pub fn extend(&mut self, bytes: &[u8]) {
        self.reclaim();
        self.buf.extend_from_slice(bytes);
    }

    /// Read once from `r` directly into the assembly buffer — the
    /// reactor's hot path. Skipping the caller-side scratch buffer
    /// turns a read-plus-memcpy per chunk into a read into place (the
    /// `resize` zero-fill below is a plain memset, half the memory
    /// traffic of the copy it replaces).
    ///
    /// Returns the byte count from the underlying `read` (0 = EOF);
    /// `WouldBlock` and friends propagate unchanged and leave the
    /// buffered bytes intact.
    pub fn fill_from(&mut self, r: &mut impl Read) -> io::Result<usize> {
        /// One socket read's worth of room.
        const READ_CHUNK: usize = 64 * 1024;
        self.reclaim();
        let len = self.buf.len();
        self.buf.resize(len + READ_CHUNK, 0);
        // PANIC-OK: `resize` above guarantees `len < buf.len()`, so the
        // range start is always in bounds.
        let result = r.read(&mut self.buf[len..]);
        self.buf.truncate(len + result.as_ref().copied().unwrap_or(0));
        result
    }

    /// Reclaim the consumed prefix before growing, so the buffer's
    /// high-water mark tracks the largest *single* frame rather than
    /// the connection's lifetime traffic.
    fn reclaim(&mut self) {
        if self.consumed > 0 {
            self.buf.drain(..self.consumed);
            self.consumed = 0;
        }
    }

    /// Bytes buffered but not yet decoded into frames.
    pub fn pending(&self) -> usize {
        self.buf.len() - self.consumed
    }

    /// Decode the next complete frame, if one is fully buffered.
    ///
    /// `Ok(None)` means "wait for more bytes". Any error means the
    /// stream is unrecoverable at this point.
    pub fn next_frame(&mut self) -> Result<Option<Payload>, FrameError> {
        let tail = self.buf.get(self.consumed..).unwrap_or(&[]);
        match decode_frame(tail) {
            Ok((payload, used)) => {
                self.consumed += used;
                Ok(Some(payload))
            }
            Err(FrameError::Incomplete) => Ok(None),
            Err(e) => Err(e),
        }
    }
}

/// True for the error kinds a read timeout surfaces as (platform
/// dependent: `WouldBlock` on Unix, `TimedOut` on Windows).
pub fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Fill `buf` completely, retrying on read timeouts once the frame has
/// started (a frame, once started, is finished). Returns how many bytes
/// were read before a clean EOF or a permitted initial timeout.
fn read_full(r: &mut impl Read, buf: &mut [u8], allow_initial_timeout: bool) -> io::Result<usize> {
    let mut filled = 0;
    while filled < buf.len() {
        // PANIC-OK: `filled < buf.len()` is the loop condition, so the
        // range start is always in bounds.
        match r.read(&mut buf[filled..]) {
            Ok(0) => return Ok(filled),
            Ok(n) => filled += n,
            // A timeout before the frame's first byte belongs to the
            // caller (idle-poll); mid-frame we keep waiting so a slow
            // sender cannot desynchronize the framing.
            Err(e) if is_timeout(&e) && allow_initial_timeout && filled == 0 => return Err(e),
            Err(e) if is_timeout(&e) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(filled)
}

/// Read one frame from a blocking stream.
///
/// Returns `Ok(None)` on clean EOF (connection closed between frames);
/// EOF mid-frame and protocol violations surface as `InvalidData` errors.
/// A read timeout before the frame's first byte propagates as-is (check
/// with [`is_timeout`]); a timeout mid-frame keeps waiting.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Payload>> {
    let mut len_buf = [0u8; 4];
    // Distinguish "closed between frames" from "closed mid-prefix".
    let filled = read_full(r, &mut len_buf, true)?;
    if filled == 0 {
        return Ok(None);
    }
    if filled < 4 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Incomplete.to_string(),
        ));
    }
    let len = u32::from_le_bytes(len_buf) as usize;
    if len > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::TooLarge(len).to_string(),
        ));
    }
    let mut payload = vec![0u8; len];
    if read_full(r, &mut payload, false)? < len {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            FrameError::Incomplete.to_string(),
        ));
    }
    let payload = classify(&payload)
        .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn json(s: &str) -> Payload {
        Payload::Json(s.to_string())
    }

    #[test]
    fn encode_decode_round_trip() {
        let frame = encode_frame("{\"Stats\":null}");
        let (payload, used) = decode_frame(&frame).unwrap();
        assert_eq!(payload, json("{\"Stats\":null}"));
        assert_eq!(used, frame.len());
    }

    #[test]
    fn empty_payload_is_valid() {
        let frame = encode_frame("");
        let (payload, used) = decode_frame(&frame).unwrap();
        assert_eq!(payload, json(""));
        assert_eq!(used, 4);
    }

    #[test]
    fn bin_payload_round_trips() {
        let body = vec![BIN1_MAGIC, 0x01, 0x00, 0x00, 0x00, 0x00];
        let frame = encode_payload(&Payload::Bin(body.clone()));
        let (payload, used) = decode_frame(&frame).unwrap();
        assert_eq!(payload, Payload::Bin(body));
        assert_eq!(used, frame.len());
        assert!(payload.is_bin());
    }

    #[test]
    fn truncated_inputs_are_incomplete() {
        let frame = encode_frame("hello");
        for cut in 0..frame.len() {
            assert_eq!(
                decode_frame(&frame[..cut]).unwrap_err(),
                FrameError::Incomplete,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn oversized_prefix_is_rejected_without_allocating() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        frame.extend_from_slice(b"junk");
        assert!(matches!(
            decode_frame(&frame).unwrap_err(),
            FrameError::TooLarge(_)
        ));
    }

    #[test]
    fn non_utf8_payload_without_magic_is_malformed() {
        let mut frame = Vec::new();
        frame.extend_from_slice(&2u32.to_le_bytes());
        frame.extend_from_slice(&[0xff, 0xfe]);
        assert!(matches!(
            decode_frame(&frame).unwrap_err(),
            FrameError::Malformed(_)
        ));
    }

    #[test]
    fn magic_first_byte_classifies_as_bin_even_with_garbage_tail() {
        // Framing accepts any BIN1-tagged bytes; op-level validation
        // (and rejection) happens in `bin1::decode_*`, not here.
        let mut frame = Vec::new();
        frame.extend_from_slice(&3u32.to_le_bytes());
        frame.extend_from_slice(&[BIN1_MAGIC, 0xff, 0xfe]);
        let (payload, _) = decode_frame(&frame).unwrap();
        assert_eq!(payload, Payload::Bin(vec![BIN1_MAGIC, 0xff, 0xfe]));
    }

    #[test]
    fn stream_round_trip_and_eof() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "one").unwrap();
        write_payload(&mut buf, &Payload::Bin(vec![BIN1_MAGIC, 0x03])).unwrap();
        write_frame(&mut buf, "two").unwrap();
        let mut cursor = std::io::Cursor::new(buf);
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(json("one")));
        assert_eq!(
            read_frame(&mut cursor).unwrap(),
            Some(Payload::Bin(vec![BIN1_MAGIC, 0x03]))
        );
        assert_eq!(read_frame(&mut cursor).unwrap(), Some(json("two")));
        assert_eq!(read_frame(&mut cursor).unwrap(), None, "clean EOF");
    }

    #[test]
    fn write_payload_rejects_bin_without_magic() {
        let mut buf = Vec::new();
        let err = write_payload(&mut buf, &Payload::Bin(vec![0x00])).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidInput);
        assert!(buf.is_empty(), "nothing written on rejection");
    }

    #[test]
    fn assembler_handles_byte_at_a_time_delivery() {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame("first"));
        bytes.extend_from_slice(&encode_frame(""));
        bytes.extend_from_slice(&encode_payload(&Payload::Bin(vec![BIN1_MAGIC, 0x02])));
        bytes.extend_from_slice(&encode_frame("third"));
        let mut asm = FrameAssembler::new();
        let mut out = Vec::new();
        for b in &bytes {
            asm.extend(std::slice::from_ref(b));
            while let Some(p) = asm.next_frame().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(
            out,
            vec![
                json("first"),
                json(""),
                Payload::Bin(vec![BIN1_MAGIC, 0x02]),
                json("third")
            ]
        );
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn fill_from_assembles_across_dribbled_reads() {
        // A reader that yields at most 3 bytes per call: frames straddle
        // reads every way, and the result must match the extend path.
        struct Dribble<R>(R);
        impl<R: Read> Read for Dribble<R> {
            fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
                let n = buf.len().min(3);
                // PANIC-OK: `n <= buf.len()` by construction.
                self.0.read(&mut buf[..n])
            }
        }

        let mut bytes = Vec::new();
        bytes.extend_from_slice(&encode_frame("alpha"));
        bytes.extend_from_slice(&encode_frame(""));
        bytes.extend_from_slice(&encode_frame("gamma"));
        let mut reader = Dribble(std::io::Cursor::new(bytes));
        let mut asm = FrameAssembler::new();
        let mut out = Vec::new();
        while asm.fill_from(&mut reader).unwrap() > 0 {
            while let Some(p) = asm.next_frame().unwrap() {
                out.push(p);
            }
        }
        assert_eq!(out, vec![json("alpha"), json(""), json("gamma")]);
        assert_eq!(asm.pending(), 0);
    }

    #[test]
    fn fill_from_read_error_preserves_buffered_bytes() {
        struct Failing;
        impl Read for Failing {
            fn read(&mut self, _: &mut [u8]) -> io::Result<usize> {
                Err(io::Error::from(io::ErrorKind::WouldBlock))
            }
        }
        let mut asm = FrameAssembler::new();
        asm.extend(&encode_frame("kept")[..6]); // partial frame buffered
        let pending = asm.pending();
        let err = asm.fill_from(&mut Failing).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::WouldBlock);
        assert_eq!(asm.pending(), pending, "no phantom bytes on error");
    }

    #[test]
    fn assembler_rejects_oversized_and_non_utf8() {
        let mut asm = FrameAssembler::new();
        asm.extend(&u32::MAX.to_le_bytes());
        assert!(matches!(asm.next_frame(), Err(FrameError::TooLarge(_))));

        let mut asm = FrameAssembler::new();
        asm.extend(&2u32.to_le_bytes());
        asm.extend(&[0xff, 0xfe]);
        assert!(matches!(asm.next_frame(), Err(FrameError::Malformed(_))));
    }

    #[test]
    fn stream_eof_mid_frame_is_an_error() {
        let mut buf = Vec::new();
        write_frame(&mut buf, "payload").unwrap();
        buf.truncate(buf.len() - 3);
        let mut cursor = std::io::Cursor::new(buf);
        assert!(read_frame(&mut cursor).is_err());
    }
}
