//! The service: one backend, one shard pool, one snapshot publisher, and
//! the request → response logic shared by the TCP server and in-process
//! tests.
//!
//! Queries never touch the counting structures: they are answered from
//! the most recently *published* snapshot, so a query burst cannot block
//! ingestion (and vice versa — the publisher thread is the only reader
//! doing capture work). Every answer carries the snapshot's epoch and a
//! staleness bound: the number of items applied since that snapshot was
//! captured.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use cots::{CotsEngine, JumpingWindow, SnapshotPublisher};
use cots_core::{CotsConfig, CotsError, Result, ServiceReport, Threshold};
use cots_profiling::IngestTally;

use crate::protocol::{QueryReq, QueryStamp, Request, Response};
use crate::shard::{Backend, SendOutcome, ShardPool, ShardSender};

/// Service deployment knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shard worker threads.
    pub shards: usize,
    /// Counter budget of the summary (`m`).
    pub capacity: usize,
    /// `Some(w)` serves a jumping window of `w` elements instead of the
    /// full history.
    pub window: Option<u64>,
    /// Snapshot publish cadence.
    pub refresh: Duration,
    /// Ring capacity per (connection, shard), in batches.
    pub queue_batches: usize,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            capacity: 1_000,
            window: None,
            refresh: Duration::from_millis(20),
            queue_batches: 64,
        }
    }
}

/// A running service instance (workers + publisher thread).
pub struct Service {
    backend: Backend,
    pool: Arc<ShardPool>,
    publisher: Arc<SnapshotPublisher<u64>>,
    tally: Arc<IngestTally>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    refresher: Option<JoinHandle<()>>,
}

impl Service {
    /// Build the backend, spawn shard workers and the publisher thread.
    pub fn start(config: ServiceConfig) -> Result<Self> {
        let engine_config = CotsConfig::for_capacity(config.capacity)?;
        let backend = match config.window {
            None => Backend::Engine(Arc::new(CotsEngine::new(engine_config)?)),
            Some(w) => Backend::Window(Arc::new(JumpingWindow::new(engine_config, w)?)),
        };
        let pool = ShardPool::new(config.shards, config.queue_batches);
        let workers = pool.spawn_workers(&backend);
        let publisher = Arc::new(SnapshotPublisher::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let refresher = {
            let backend = backend.clone();
            let publisher = publisher.clone();
            let shutdown = shutdown.clone();
            let refresh = config.refresh;
            std::thread::Builder::new()
                .name("cots-publisher".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        let (snapshot, total, rotations) = backend.capture();
                        publisher.publish(snapshot, total, rotations);
                        std::thread::sleep(refresh);
                    }
                    // One final publish so post-drain queries see the
                    // quiescent state with zero staleness.
                    let (snapshot, total, rotations) = backend.capture();
                    publisher.publish(snapshot, total, rotations);
                })
                .map_err(|e| CotsError::Report(format!("spawn publisher: {e}")))?
        };
        Ok(Self {
            backend,
            pool,
            publisher,
            tally: Arc::new(IngestTally::new()),
            shutdown,
            workers,
            refresher: Some(refresher),
        })
    }

    /// Register a new connection with the shard pool.
    pub fn connect(&self) -> ShardSender {
        self.pool.connect()
    }

    /// Whether graceful shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Request graceful shutdown (idempotent). Connections observe it via
    /// [`Service::shutdown_requested`] and close; closing their rings
    /// lets the (also signalled) shard workers drain and exit.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.pool.begin_shutdown();
    }

    /// Handle one request on behalf of a connection.
    pub fn handle(&self, request: Request, sender: &mut ShardSender) -> Response {
        match request {
            Request::Ingest { keys } => match sender.send(&keys) {
                SendOutcome::Enqueued => {
                    self.tally.ingest(keys.len() as u64);
                    Response::IngestAck {
                        enqueued: keys.len() as u64,
                    }
                }
                SendOutcome::Overloaded => {
                    self.tally.reject();
                    Response::Overloaded
                }
            },
            Request::Query(q) => {
                self.tally.query();
                self.answer(q)
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Snapshot => {
                let (snap, stamp) = self.published();
                Response::Snapshot {
                    snapshot: snap.snapshot.clone(),
                    stamp,
                }
            }
            Request::Shutdown => {
                self.begin_shutdown();
                Response::ShuttingDown
            }
        }
    }

    /// Answer a query from the published snapshot.
    fn answer(&self, q: QueryReq) -> Response {
        let (snap, stamp) = self.published();
        let entries = match q {
            QueryReq::Point { key } => snap.get(&key).into_iter().copied().collect(),
            QueryReq::Frequent { phi } => {
                if !(phi > 0.0 && phi < 1.0) {
                    return Response::Error {
                        message: format!("phi must be in (0, 1), got {phi}"),
                    };
                }
                snap.frequent(Threshold::Fraction(phi))
            }
            QueryReq::TopK { k } => snap.top_k(k),
        };
        Response::Answer {
            entries,
            total: snap.total(),
            stamp,
        }
    }

    /// The current published snapshot plus its provenance stamp.
    fn published(&self) -> (Arc<cots::StampedSnapshot<u64>>, QueryStamp) {
        let snap = self.publisher.current();
        let stamp = QueryStamp {
            epoch: snap.epoch,
            captured_total: snap.captured_total,
            staleness: self.backend.processed().saturating_sub(snap.captured_total),
            rotations: snap.rotations,
        };
        (snap, stamp)
    }

    /// Current service statistics.
    pub fn stats(&self) -> ServiceReport {
        let snap = self.publisher.current();
        let staleness = self.backend.processed().saturating_sub(snap.captured_total);
        self.tally.report(
            &self.pool.tallies,
            snap.epoch,
            staleness,
            self.backend.monitored(),
        )
    }

    /// Drain and stop: signal shutdown, wait for shard workers (all
    /// connections must already be closed for their rings to close),
    /// quiesce the backend, and publish a final exact snapshot.
    ///
    /// Call after every [`ShardSender`] for this service has been
    /// dropped; workers wait for live rings to close before exiting.
    pub fn drain(mut self) {
        self.begin_shutdown();
        self.pool.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(r) = self.refresher.take() {
            let _ = r.join();
        }
        self.backend.finalize();
        let (snapshot, total, rotations) = self.backend.capture();
        self.publisher.publish(snapshot, total, rotations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(service: &Service, sender: &mut ShardSender, keys: &[u64], batch: usize) {
        let mut sent = 0;
        while sent < keys.len() {
            let end = (sent + batch).min(keys.len());
            match service.handle(
                Request::Ingest {
                    keys: keys[sent..end].to_vec(),
                },
                sender,
            ) {
                Response::IngestAck { enqueued } => {
                    assert_eq!(enqueued as usize, end - sent);
                    sent = end;
                }
                Response::Overloaded => std::thread::yield_now(),
                other => panic!("unexpected ingest response: {other:?}"),
            }
        }
    }

    fn await_applied(service: &Service, n: u64) {
        for _ in 0..10_000 {
            let stats = service.stats();
            if stats.applied_keys() == n && stats.staleness == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("service did not quiesce at {n} applied keys");
    }

    #[test]
    fn ingest_then_query_round_trip() {
        let service = Service::start(ServiceConfig {
            shards: 2,
            capacity: 64,
            refresh: Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        let keys: Vec<u64> = (0..20_000u64).map(|i| i % 40).collect();
        drive(&service, &mut sender, &keys, 512);
        await_applied(&service, 20_000);

        match service.handle(Request::Query(QueryReq::Point { key: 7 }), &mut sender) {
            Response::Answer {
                entries,
                total,
                stamp,
            } => {
                assert_eq!(total, 20_000);
                assert_eq!(stamp.staleness, 0);
                assert!(stamp.epoch > 0);
                let e = &entries[0];
                // 20_000 / 40 occurrences of each key; Space Saving
                // guarantee at quiescence with capacity > distinct keys.
                assert_eq!(e.count - e.error, 500);
            }
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(
            Request::Query(QueryReq::Frequent { phi: 0.02 }),
            &mut sender,
        ) {
            Response::Answer { entries, .. } => {
                assert_eq!(entries.len(), 40, "all keys hold exactly 2.5% mass");
            }
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(Request::Query(QueryReq::TopK { k: 5 }), &mut sender) {
            Response::Answer { entries, .. } => assert_eq!(entries.len(), 5),
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(Request::Stats, &mut sender) {
            Response::Stats(report) => {
                assert_eq!(report.ingested_keys, 20_000);
                assert_eq!(report.applied_keys(), 20_000);
                assert_eq!(report.queries, 3);
                assert_eq!(report.shards.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(Request::Shutdown, &mut sender) {
            Response::ShuttingDown => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(service.shutdown_requested());
        drop(sender);
        service.drain();
    }

    #[test]
    fn invalid_phi_is_an_error_response() {
        let service = Service::start(ServiceConfig::default()).unwrap();
        let mut sender = service.connect();
        for phi in [0.0, 1.0, -0.5, f64::NAN] {
            match service.handle(Request::Query(QueryReq::Frequent { phi }), &mut sender) {
                Response::Error { .. } => {}
                other => panic!("phi={phi} should error, got {other:?}"),
            }
        }
        drop(sender);
        service.drain();
    }

    #[test]
    fn window_service_reports_rotations() {
        let service = Service::start(ServiceConfig {
            shards: 2,
            capacity: 64,
            window: Some(1_000),
            refresh: Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        let keys: Vec<u64> = (0..5_000u64).map(|i| i % 10).collect();
        drive(&service, &mut sender, &keys, 256);
        // Wait for full application (window applied counts live in the
        // shard tallies, not the window total, which also counts them).
        for _ in 0..10_000 {
            if service.stats().applied_keys() == 5_000 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Let the publisher observe the quiescent window.
        std::thread::sleep(Duration::from_millis(10));
        match service.handle(Request::Query(QueryReq::TopK { k: 10 }), &mut sender) {
            Response::Answer { stamp, total, .. } => {
                assert!(
                    stamp.rotations.unwrap() >= 9,
                    "5000 items over W=1000 rotate ≥9 times, saw {:?}",
                    stamp.rotations
                );
                assert!(total <= 1_000, "window bounds the answer mass");
            }
            other => panic!("unexpected: {other:?}"),
        }
        drop(sender);
        service.drain();
    }
}
