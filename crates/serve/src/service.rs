//! The service: one backend, one shard pool, one snapshot publisher, and
//! the request → response logic shared by the TCP server and in-process
//! tests.
//!
//! Queries never touch the counting structures: they are answered from
//! the most recently *published* snapshot, so a query burst cannot block
//! ingestion (and vice versa — the publisher thread is the only reader
//! doing capture work). Every answer carries the snapshot's epoch and a
//! staleness bound: the number of items applied since that snapshot was
//! captured.
//!
//! With persistence enabled (`--data-dir`), startup recovers the durable
//! state *before* any listener opens: the newest valid checkpoint becomes
//! an immutable **base snapshot**, the WAL tail replays into the fresh
//! engine, and every published snapshot merges base + live through the
//! Space-Saving merge algebra — so post-recovery answers keep the
//! `count ≥ true ≥ count − error` envelope over everything recovered.
//!
//! AUDIT: locks — the request path must never block behind I/O holding a
//! lock; enforced by `cargo xtask audit` (lint-locks).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Mutex, RwLock};

use cots::{CotsEngine, JumpingWindow, SnapshotPublisher};
use cots_core::merge::merge_snapshots;
use cots_core::{
    CotsConfig, CotsError, RecoveryReport, ReplReport, Result, ServiceReport, Snapshot, Threshold,
};
use cots_persist::Checkpoint;
use cots_profiling::IngestTally;

use crate::frame::Payload;
use crate::persistence::{PersistOptions, Persistence};
use crate::protocol::{
    snapshot_page_response, QueryReq, QueryStamp, ReplFrame, Request, Response,
    MIN_PROTO_VERSION, PROTO_VERSION,
};
use crate::shard::{Backend, SendOutcome, ShardPool, ShardSender};

/// Feature flags a member instance advertises in `HELLO_ACK`.
const MEMBER_FEATURES: &[&str] = &["snapshot-page", "bin"];

/// Per-connection protocol state: handshake progress, whether the peer
/// negotiated the BIN1 encoding, plus the snapshot pinned by an
/// in-progress paged transfer. Owned by the connection (a blocking
/// thread or a reactor slab slot), never shared.
#[derive(Default)]
pub struct ConnState {
    greeted: bool,
    /// The peer listed `"bin"` in its `HELLO` features: BIN1 frames are
    /// admitted on this connection (and answered in kind).
    bin: bool,
    pinned: Option<Arc<cots::StampedSnapshot<u64>>>,
}

impl ConnState {
    /// Fresh state for a newly accepted connection: the first frame must
    /// be `HELLO`.
    pub fn new() -> Self {
        Self::default()
    }

    /// A state that skips the handshake — for in-process callers and
    /// tests that drive [`Service::serve`] without a socket.
    pub fn pre_greeted() -> Self {
        Self {
            greeted: true,
            bin: false,
            pinned: None,
        }
    }

    /// Whether the handshake has completed on this connection.
    pub fn is_greeted(&self) -> bool {
        self.greeted
    }

    /// Whether the peer negotiated the BIN1 encoding at `HELLO` time.
    pub fn is_bin(&self) -> bool {
        self.bin
    }
}

/// What a connection should do with one request's outcome.
pub struct Reply {
    /// The response to write.
    pub response: Response,
    /// Close the connection after flushing the response (handshake
    /// rejection, graceful shutdown).
    pub close: bool,
}

impl Reply {
    /// A response that keeps the connection open.
    pub fn open(response: Response) -> Self {
        Self {
            response,
            close: false,
        }
    }

    /// A response after which the connection closes.
    pub fn closing(response: Response) -> Self {
        Self {
            response,
            close: true,
        }
    }
}

/// Service deployment knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shard worker threads.
    pub shards: usize,
    /// Counter budget of the summary (`m`).
    pub capacity: usize,
    /// `Some(w)` serves a jumping window of `w` elements instead of the
    /// full history.
    pub window: Option<u64>,
    /// Snapshot publish cadence.
    pub refresh: Duration,
    /// Ring capacity per (connection, shard), in batches.
    pub queue_batches: usize,
    /// Durable checkpoints + WAL under a data directory. Not supported
    /// together with `window` (only the full-history engine persists).
    pub persist: Option<PersistOptions>,
    /// Start as a replication standby: refuse `INGEST`, accept the
    /// `REPL_*` stream from a primary, stay promotable. Requires
    /// `persist` (the standby keeps its own durable WAL copy).
    pub standby: bool,
    /// Replication peer address, for `STATS` reporting only (the wiring
    /// itself is the shipper's job).
    pub repl_peer: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            capacity: 1_000,
            window: None,
            refresh: Duration::from_millis(20),
            queue_batches: 64,
            persist: None,
            standby: false,
            repl_peer: None,
        }
    }
}

/// The recovery base snapshot, shared mutably so a standby can install
/// a shipped catch-up snapshot after startup. Readers (publisher,
/// checkpointer, query path) grab the `Arc` and drop the guard — no
/// work happens under the lock.
#[derive(Default)]
struct BaseState {
    snapshot: RwLock<Option<Arc<Snapshot<u64>>>>,
    total: AtomicU64,
}

impl BaseState {
    /// The current base, if any, plus the stream mass it accounts for.
    fn get(&self) -> (Option<Arc<Snapshot<u64>>>, u64) {
        let snap = self.snapshot.read().clone();
        (snap, self.total.load(Ordering::Acquire))
    }

    fn install(&self, snapshot: Arc<Snapshot<u64>>, total: u64) {
        let mut slot = self.snapshot.write();
        self.total.store(total, Ordering::Release);
        *slot = Some(snapshot);
    }

    fn is_empty(&self) -> bool {
        self.snapshot.read().is_none()
    }
}

/// Standby-side replication counters (the shipper keeps the primary
/// side and pushes whole reports via [`Service::set_repl_report`]).
#[derive(Default)]
struct ReplCounters {
    streamed_batches: AtomicU64,
    streamed_keys: AtomicU64,
    duplicates: AtomicU64,
    snapshots: AtomicU64,
    /// Set when a stream is refused because histories diverged (needs
    /// an operator to resync the standby from a fresh data directory);
    /// cleared when a stream establishes cleanly.
    resync_required: AtomicBool,
}

/// A running service instance (workers + publisher thread).
pub struct Service {
    backend: Backend,
    pool: Arc<ShardPool>,
    publisher: Arc<SnapshotPublisher<u64>>,
    tally: Arc<IngestTally>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    refresher: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
    persistence: Option<Arc<Persistence>>,
    /// Recovered (or replication-installed) checkpoint summary, merged
    /// into every published snapshot.
    base: Arc<BaseState>,
    /// Watermark of the base checkpoint: the first WAL sequence *not*
    /// covered by `base`. Everything below it is only available as part
    /// of a catch-up snapshot, never as individual WAL batches.
    base_watermark: AtomicU64,
    recovery: Option<RecoveryReport>,
    capacity: usize,
    /// Replication role: `true` while this instance is a standby.
    standby: AtomicBool,
    /// Times this instance was promoted from standby to primary.
    promotions: AtomicU64,
    /// Replication lineage (promotion generation) of this node's data:
    /// loaded from the `repl-lineage` file at startup, bumped durably
    /// on every promotion, and carried on every REPL wire op so a
    /// divergent pair refuses to stream instead of silently acking.
    lineage: AtomicU64,
    repl_counters: ReplCounters,
    /// Primary-side replication report, pushed by the WAL shipper.
    repl_report: Mutex<Option<ReplReport>>,
    repl_peer: String,
}

/// Capture the backend and merge the recovery base in, returning
/// `(snapshot, captured_total, rotations)` in publishable form.
fn capture_merged(
    backend: &Backend,
    base: &BaseState,
    capacity: usize,
) -> (Snapshot<u64>, u64, Option<u64>) {
    let (live, live_total, rotations) = backend.capture();
    match base.get() {
        (Some(b), base_total) => (
            merge_snapshots(&[(*b).clone(), live], capacity),
            base_total + live_total,
            rotations,
        ),
        (None, _) => (live, live_total, rotations),
    }
}

impl Service {
    /// Recover durable state (when configured), build the backend, and
    /// spawn shard workers plus the publisher and checkpointer threads.
    pub fn start(config: ServiceConfig) -> Result<Self> {
        if config.standby && config.persist.is_none() {
            return Err(CotsError::InvalidConfig(
                "standby mode requires --data-dir: a standby keeps its own \
                 durable WAL copy of the replicated stream"
                    .into(),
            ));
        }
        let engine_config = CotsConfig::for_capacity(config.capacity)?;
        let publisher = Arc::new(SnapshotPublisher::new());
        let base = Arc::new(BaseState::default());
        let mut recovery: Option<RecoveryReport> = None;
        let mut persistence: Option<Arc<Persistence>> = None;
        let mut base_watermark = 0u64;
        let mut lineage = 0u64;

        let backend = match (&config.persist, config.window) {
            (Some(_), Some(_)) => {
                return Err(CotsError::InvalidConfig(
                    "persistence (--data-dir) is not supported with --window: \
                     only the full-history engine checkpoints"
                        .into(),
                ))
            }
            (Some(opts), None) => {
                let rec = cots_persist::recover(&opts.data_dir)?;
                let engine = Arc::new(CotsEngine::new(engine_config)?);
                for batch in &rec.batches {
                    engine.delegate_batch(&batch.keys);
                }
                engine.finalize();
                #[cfg(feature = "invariants")]
                engine.check_quiescent_invariants();
                if let Some(ckpt) = &rec.base {
                    publisher.resume_from(ckpt.epoch);
                    let snap = ckpt.snapshot();
                    #[cfg(feature = "invariants")]
                    {
                        use cots_core::CheckInvariants;
                        let violations = snap.violations();
                        if let Some(v) = violations.first() {
                            return Err(CotsError::Report(format!(
                                "recovered checkpoint failed invariant audit: {v}"
                            )));
                        }
                    }
                    let total = snap.total();
                    base.install(Arc::new(snap), total);
                    base_watermark = ckpt.watermark;
                }
                persistence = Some(Arc::new(Persistence::new(
                    opts,
                    rec.next_seq,
                    config.capacity,
                )?));
                lineage = cots_persist::load_lineage(&opts.data_dir);
                recovery = Some(rec.report);
                Backend::Engine(engine)
            }
            (None, None) => Backend::Engine(Arc::new(CotsEngine::new(engine_config)?)),
            (None, Some(w)) => Backend::Window(Arc::new(JumpingWindow::new(engine_config, w)?)),
        };

        // Publish the recovered (or empty) state synchronously so the
        // first query ever answered already sees it.
        {
            let (snapshot, total, rotations) =
                capture_merged(&backend, &base, config.capacity);
            publisher.publish(snapshot, total, rotations);
        }

        let pool = ShardPool::new(config.shards, config.queue_batches);
        let workers = pool.spawn_workers(&backend, persistence.clone());
        let shutdown = Arc::new(AtomicBool::new(false));
        let refresher = {
            let backend = backend.clone();
            let publisher = publisher.clone();
            let shutdown = shutdown.clone();
            let base = base.clone();
            let capacity = config.capacity;
            let refresh = config.refresh;
            std::thread::Builder::new()
                .name("cots-publisher".into())
                .spawn(move || {
                    // Hold the epoch steady once the service quiesces:
                    // that is what lets delta pullers (`SNAPSHOT_PAGE {
                    // since_epoch }`) get a tiny `unchanged` answer
                    // instead of the full summary. One *confirming*
                    // publish still happens after the counters settle,
                    // because a capture can race in-flight batch
                    // application (snapshot vs. counter reads are not
                    // one atomic step) — the confirmation replaces any
                    // such torn capture with a clean one before the
                    // epoch freezes.
                    let mut last: Option<(u64, Option<u64>)> = None;
                    let mut confirmed = false;
                    while !shutdown.load(Ordering::Acquire) {
                        let (snapshot, total, rotations) =
                            capture_merged(&backend, &base, capacity);
                        if last != Some((total, rotations)) {
                            publisher.publish(snapshot, total, rotations);
                            last = Some((total, rotations));
                            confirmed = false;
                        } else if !confirmed {
                            publisher.publish(snapshot, total, rotations);
                            confirmed = true;
                        }
                        std::thread::sleep(refresh);
                    }
                    // One final publish so post-drain queries see the
                    // quiescent state with zero staleness.
                    let (snapshot, total, rotations) =
                        capture_merged(&backend, &base, capacity);
                    if last != Some((total, rotations)) || !confirmed {
                        publisher.publish(snapshot, total, rotations);
                    }
                })
                .map_err(|e| CotsError::Report(format!("spawn publisher: {e}")))?
        };
        let checkpointer = match (&persistence, &config.persist) {
            (Some(p), Some(opts)) if !opts.checkpoint_every.is_zero() => {
                let p = p.clone();
                let backend = backend.clone();
                let publisher = publisher.clone();
                let shutdown = shutdown.clone();
                let base = base.clone();
                let every = opts.checkpoint_every;
                Some(
                    std::thread::Builder::new()
                        .name("cots-checkpointer".into())
                        .spawn(move || {
                            let mut last = Instant::now();
                            while !shutdown.load(Ordering::Acquire) {
                                std::thread::sleep(Duration::from_millis(20));
                                if last.elapsed() < every {
                                    continue;
                                }
                                last = Instant::now();
                                let (b, _) = base.get();
                                if let Err(e) =
                                    p.checkpoint_now(&backend, b.as_deref(), &publisher)
                                {
                                    eprintln!("cots-serve: background checkpoint failed: {e}");
                                }
                            }
                        })
                        .map_err(|e| CotsError::Report(format!("spawn checkpointer: {e}")))?,
                )
            }
            _ => None,
        };
        Ok(Self {
            backend,
            pool,
            publisher,
            tally: Arc::new(IngestTally::new()),
            shutdown,
            workers,
            refresher: Some(refresher),
            checkpointer,
            persistence,
            base,
            base_watermark: AtomicU64::new(base_watermark),
            recovery,
            capacity: config.capacity,
            standby: AtomicBool::new(config.standby),
            promotions: AtomicU64::new(0),
            lineage: AtomicU64::new(lineage),
            repl_counters: ReplCounters::default(),
            repl_report: Mutex::new(None),
            repl_peer: config.repl_peer.unwrap_or_default(),
        })
    }

    /// The recovery accounting from startup, when persistence is on.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Total items the service accounts for: recovered base mass plus
    /// everything the backend applied since this process started.
    fn total_processed(&self) -> u64 {
        self.base.total.load(Ordering::Acquire) + self.backend.processed()
    }

    /// Whether this instance is currently a replication standby.
    pub fn is_standby(&self) -> bool {
        self.standby.load(Ordering::Acquire)
    }

    /// Times this instance has been promoted from standby to primary.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Acquire)
    }

    /// This node's replication lineage (promotion generation). A fresh
    /// data directory starts at 0; every promotion bumps it durably.
    pub fn lineage(&self) -> u64 {
        self.lineage.load(Ordering::Acquire)
    }

    /// The persistence layer, when running with a data directory. The
    /// WAL shipper tails its directory and pins its prune floor.
    pub fn persistence(&self) -> Option<&Arc<Persistence>> {
        self.persistence.as_ref()
    }

    /// Install the primary-side replication report the WAL shipper
    /// maintains; it is merged into every `STATS` answer.
    pub fn set_repl_report(&self, report: ReplReport) {
        *self.repl_report.lock() = Some(report);
    }

    /// The lowest WAL sequence this instance can ship as individual
    /// batches: the base checkpoint's watermark or the oldest surviving
    /// WAL segment, whichever is higher. A standby acknowledged below
    /// this floor needs a catch-up snapshot first.
    pub fn repl_floor(&self) -> u64 {
        let base = self.base_watermark.load(Ordering::Acquire);
        let oldest = match &self.persistence {
            Some(p) => match cots_persist::oldest_segment_seq(p.dir()) {
                Ok(Some(seq)) => seq,
                Ok(None) => p.next_seq(),
                Err(_) => p.next_seq(),
            },
            None => 0,
        };
        base.max(oldest)
    }

    /// Cut a consistent `(watermark, merged summary)` pair for a
    /// catch-up `REPL_SNAPSHOT` — a durable checkpoint whose summary is
    /// handed back instead of thrown away. Requires persistence.
    pub fn repl_cut(&self) -> Result<(u64, Snapshot<u64>)> {
        let p = self.persistence.as_ref().ok_or_else(|| {
            CotsError::Report("replication snapshot requires --data-dir".into())
        })?;
        let (b, _) = self.base.get();
        let (watermark, _, _, merged) =
            p.checkpoint_full(&self.backend, b.as_deref(), &self.publisher)?;
        Ok((watermark, merged))
    }

    /// Register a new connection with the shard pool.
    pub fn connect(&self) -> ShardSender {
        self.pool.connect()
    }

    /// Whether graceful shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Request graceful shutdown (idempotent). Connections observe it via
    /// [`Service::shutdown_requested`] and close; closing their rings
    /// lets the (also signalled) shard workers drain and exit.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.pool.begin_shutdown();
    }

    /// Serve one request on behalf of a real connection: enforce the
    /// `HELLO` handshake, keep paged snapshot transfers pinned to one
    /// snapshot, and say whether the connection should close afterwards.
    ///
    /// The first frame on every connection must be `HELLO` with a
    /// supported version; anything else is answered with
    /// `UNSUPPORTED_VERSION` (requested = 0 when no `HELLO` was sent at
    /// all) and the connection closes. In-process callers that need no
    /// handshake use [`Service::handle`] or [`ConnState::pre_greeted`].
    pub fn serve(&self, request: Request, conn: &mut ConnState, sender: &mut ShardSender) -> Reply {
        if let Request::Hello {
            proto_version,
            ref features,
        } = request
        {
            return if (MIN_PROTO_VERSION..=PROTO_VERSION).contains(&proto_version) {
                conn.greeted = true;
                // BIN1 admission is per connection: only a peer that
                // announced the feature may send binary frames.
                conn.bin = features.iter().any(|f| f == "bin");
                Reply::open(self.hello_ack())
            } else {
                Reply::closing(Response::UnsupportedVersion {
                    supported: PROTO_VERSION,
                    requested: proto_version,
                })
            };
        }
        if !conn.greeted {
            return Reply::closing(Response::UnsupportedVersion {
                supported: PROTO_VERSION,
                requested: 0,
            });
        }
        if let Request::SnapshotPage {
            since_epoch,
            offset,
            limit,
        } = request
        {
            // Offset 0 (re)pins the freshest published snapshot; later
            // pages keep reading the pinned one, so a multi-frame
            // transfer never sees a torn summary.
            if offset == 0 || conn.pinned.is_none() {
                conn.pinned = Some(self.publisher.current());
            }
            let response = match &conn.pinned {
                Some(snap) => {
                    let stamp = self.stamp_for(snap);
                    snapshot_page_response(&snap.snapshot, stamp, since_epoch, offset, limit)
                }
                None => Response::Error {
                    message: "no snapshot published yet".into(),
                },
            };
            return Reply::open(response);
        }
        let response = self.handle(request, sender);
        let close = matches!(response, Response::ShuttingDown);
        Reply { response, close }
    }

    /// Serve one raw frame payload: decode (JSON always; BIN1 only on a
    /// connection that negotiated the `"bin"` feature), dispatch through
    /// [`Service::serve`], and encode the response *in kind* — a BIN1
    /// request gets a BIN1 response when the response op has a binary
    /// form, and JSON otherwise (errors are always JSON). Returns the
    /// encoded response payload and whether the connection must close.
    ///
    /// Both I/O models (blocking threads and the reactor) funnel through
    /// here, so the two front-ends accept byte-identical languages.
    pub fn serve_frame(
        &self,
        payload: &Payload,
        conn: &mut ConnState,
        sender: &mut ShardSender,
    ) -> (Payload, bool) {
        let (reply, bin) = match payload {
            Payload::Json(text) => match crate::protocol::decode::<Request>(text) {
                Ok(request) => (self.serve(request, conn, sender), false),
                Err(e) => (
                    Reply::open(Response::Error {
                        message: e.to_string(),
                    }),
                    false,
                ),
            },
            Payload::Bin(bytes) => {
                if !conn.is_bin() {
                    // Sending BIN1 without negotiating it is a protocol
                    // violation, handled like a failed handshake: answer
                    // and close.
                    (
                        Reply::closing(Response::Error {
                            message: "BIN1 frame on a connection that did not \
                                      negotiate the `bin` feature in HELLO"
                                .into(),
                        }),
                        false,
                    )
                } else {
                    match crate::bin1::decode_request(bytes) {
                        Ok(request) => (self.serve(request, conn, sender), true),
                        Err(e) => (
                            Reply::open(Response::Error {
                                message: e.to_string(),
                            }),
                            false,
                        ),
                    }
                }
            }
        };
        let encoded = if bin {
            match crate::bin1::encode_response(&reply.response) {
                Some(bytes) => Payload::Bin(bytes),
                None => Payload::Json(crate::protocol::encode(&reply.response)),
            }
        } else {
            Payload::Json(crate::protocol::encode(&reply.response))
        };
        (encoded, reply.close)
    }

    /// The `HELLO_ACK` this instance answers a successful handshake with.
    fn hello_ack(&self) -> Response {
        Response::HelloAck {
            proto_version: PROTO_VERSION,
            features: MEMBER_FEATURES.iter().map(|s| s.to_string()).collect(),
        }
    }

    /// Handle one request on behalf of a connection.
    pub fn handle(&self, request: Request, sender: &mut ShardSender) -> Response {
        match request {
            Request::Hello { .. } => self.hello_ack(),
            Request::Ingest { keys } => {
                if self.is_standby() {
                    return Response::Error {
                        message: "this instance is a replication standby and refuses \
                                  INGEST; write to its primary"
                            .into(),
                    };
                }
                match sender.send(&keys) {
                    SendOutcome::Enqueued => {
                        self.tally.ingest(keys.len() as u64);
                        Response::IngestAck {
                            enqueued: keys.len() as u64,
                        }
                    }
                    SendOutcome::Overloaded => {
                        self.tally.reject();
                        Response::Overloaded
                    }
                }
            }
            Request::Query(q) => {
                self.tally.query();
                self.answer(q)
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Snapshot => {
                let (snap, stamp) = self.published();
                Response::Snapshot {
                    snapshot: snap.snapshot.clone(),
                    stamp,
                }
            }
            Request::SnapshotPage {
                since_epoch,
                offset,
                limit,
            } => {
                // Pin-free in-process path; real connections go through
                // [`Service::serve`], which pins across pages.
                let (snap, stamp) = self.published();
                snapshot_page_response(&snap.snapshot, stamp, since_epoch, offset, limit)
            }
            Request::ClusterStats => Response::Error {
                message: "this instance is a member, not a coordinator \
                          (CLUSTER_STATS is answered by cots-coord)"
                    .into(),
            },
            Request::Checkpoint => match &self.persistence {
                Some(p) => {
                    let (b, _) = self.base.get();
                    match p.checkpoint_now(&self.backend, b.as_deref(), &self.publisher) {
                        Ok((watermark, total, bytes)) => Response::Checkpointed {
                            watermark,
                            total,
                            bytes,
                        },
                        Err(e) => Response::Error {
                            message: format!("checkpoint failed: {e}"),
                        },
                    }
                }
                None => Response::Error {
                    message: "service has no data directory (start with --data-dir)".into(),
                },
            },
            Request::Shutdown => {
                self.begin_shutdown();
                Response::ShuttingDown
            }
            Request::ReplSubscribe {
                start_seq: _,
                lineage,
                next_seq,
            } => match self.repl_persistence() {
                Ok(p) => self.accept_subscribe(&p, lineage, next_seq),
                Err(resp) => resp,
            },
            Request::ReplBatch { lineage, batches } => match self.repl_persistence() {
                Ok(p) => {
                    // A mismatched lineage must never be acked: a
                    // cumulative ack over unseen batches is exactly the
                    // silent divergence the lineage exists to prevent.
                    if lineage != self.lineage() {
                        Response::Error {
                            message: format!(
                                "replication batch refused: primary lineage {lineage} \
                                 does not match standby lineage {}",
                                self.lineage()
                            ),
                        }
                    } else {
                        self.apply_repl_batches(&p, &batches);
                        Response::ReplAck {
                            ack_seq: p.next_seq(),
                        }
                    }
                }
                Err(resp) => resp,
            },
            Request::ReplSnapshot {
                lineage,
                watermark,
                snapshot,
            } => match self.repl_persistence() {
                Ok(p) => self.install_repl_snapshot(&p, lineage, watermark, snapshot),
                Err(resp) => resp,
            },
            Request::ReplPromote => {
                if self.standby.swap(false, Ordering::AcqRel) {
                    self.promotions.fetch_add(1, Ordering::Release);
                    let promoted = self.lineage.fetch_add(1, Ordering::AcqRel) + 1;
                    self.repl_counters
                        .resync_required
                        .store(false, Ordering::Release);
                    if let Some(p) = &self.persistence {
                        // Best-effort durability: a lost bump means the
                        // node restarts with the pre-promotion lineage
                        // and is refused by newer peers — safe (it must
                        // resync), never silently divergent.
                        let _ = cots_persist::store_lineage(p.dir(), promoted);
                    }
                }
                Response::ReplAck {
                    ack_seq: self
                        .persistence
                        .as_ref()
                        .map(|p| p.next_seq())
                        .unwrap_or(0),
                }
            }
        }
    }

    /// The persistence handle a `REPL_*` stream operation applies
    /// through, or the refusal to send back: only a standby with a data
    /// directory accepts the stream.
    fn repl_persistence(&self) -> std::result::Result<Arc<Persistence>, Response> {
        if !self.is_standby() {
            return Err(Response::Error {
                message: "this instance is not a replication standby \
                          (REPL_* streams are only accepted in --standby mode)"
                    .into(),
            });
        }
        match &self.persistence {
            Some(p) => Ok(p.clone()),
            None => Err(Response::Error {
                message: "standby has no data directory".into(),
            }),
        }
    }

    /// Decide whether a primary may open (or reopen) the replication
    /// stream. This is the divergence gate: a cumulative ack is only
    /// safe when both sides agree on the history below the watermark,
    /// so the standby refuses — instead of acking — whenever the
    /// lineages or watermarks prove the histories have split.
    fn accept_subscribe(
        &self,
        p: &Persistence,
        primary_lineage: u64,
        primary_next: u64,
    ) -> Response {
        let mine = self.lineage();
        let my_next = p.next_seq();
        if primary_lineage < mine {
            // A pre-promotion ex-primary (or a primary on older data)
            // is trying to ship history this node has already moved
            // past. Its data is the divergent copy, not ours.
            return Response::Error {
                message: format!(
                    "replication refused: primary lineage {primary_lineage} is \
                     behind standby lineage {mine}; the primary's history is \
                     stale"
                ),
            };
        }
        let holds_state =
            !self.base.is_empty() || self.backend.processed() > 0 || my_next > 0;
        if primary_lineage > mine {
            if holds_state {
                // This standby's data predates the primary's promotion
                // — e.g. a dead ex-primary restarted with --standby on
                // its old data dir. Its local tail was never replicated
                // and cannot be reconciled; acking the new stream would
                // silently keep the divergent tail.
                self.repl_counters
                    .resync_required
                    .store(true, Ordering::Release);
                return Response::Error {
                    message: format!(
                        "replication refused: primary lineage {primary_lineage} \
                         diverges from this standby's lineage {mine} and the \
                         standby already holds state; restart the standby with \
                         a fresh data directory to resync"
                    ),
                };
            }
            // Empty standby: adopt the primary's lineage (best-effort
            // durably — a lost write re-adopts on the next subscribe).
            let _ = cots_persist::store_lineage(p.dir(), primary_lineage);
            self.lineage.store(primary_lineage, Ordering::Release);
        } else if my_next > primary_next {
            // Same lineage but this standby's WAL is ahead of the
            // primary's: the primary lost a durable suffix (e.g. it was
            // restored from older media). Acking would mark batches the
            // standby never saw as replicated.
            self.repl_counters
                .resync_required
                .store(true, Ordering::Release);
            return Response::Error {
                message: format!(
                    "replication refused: standby watermark {my_next} is ahead \
                     of primary watermark {primary_next} at lineage {mine}; \
                     histories have diverged"
                ),
            };
        }
        self.repl_counters
            .resync_required
            .store(false, Ordering::Release);
        Response::ReplAck { ack_seq: my_next }
    }

    /// Apply an in-order run of replicated batches: duplicates are
    /// counted and skipped, a gap stops the run (the unchanged ack tells
    /// the shipper where to rewind to).
    fn apply_repl_batches(&self, p: &Persistence, batches: &[ReplFrame]) {
        for frame in batches {
            let expected = p.next_seq();
            if frame.seq < expected {
                self.repl_counters.duplicates.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if frame.seq > expected
                || !p.log_external_and_apply(frame.seq, &frame.keys, &self.backend)
            {
                break;
            }
            self.repl_counters.streamed_batches.fetch_add(1, Ordering::Relaxed);
            self.repl_counters
                .streamed_keys
                .fetch_add(frame.keys.len() as u64, Ordering::Relaxed);
        }
    }

    /// Install a catch-up base snapshot into an empty standby, adopting
    /// the primary's lineage; a same-lineage watermark the log already
    /// covers is acked as a duplicate.
    fn install_repl_snapshot(
        &self,
        p: &Persistence,
        lineage: u64,
        watermark: u64,
        snapshot: Snapshot<u64>,
    ) -> Response {
        let mine = self.lineage();
        if lineage < mine {
            return Response::Error {
                message: format!(
                    "catch-up snapshot refused: primary lineage {lineage} is \
                     behind standby lineage {mine}; the primary's history is \
                     stale"
                ),
            };
        }
        if lineage == mine && p.next_seq() >= watermark {
            self.repl_counters.duplicates.fetch_add(1, Ordering::Relaxed);
            return Response::ReplAck {
                ack_seq: p.next_seq(),
            };
        }
        if !self.base.is_empty() || self.backend.processed() > 0 || p.next_seq() > 0 {
            self.repl_counters
                .resync_required
                .store(true, Ordering::Release);
            return Response::Error {
                message: "catch-up snapshot refused: this standby already holds \
                          state; restart it with a fresh data directory to resync"
                    .into(),
            };
        }
        let epoch = self.publisher.epoch();
        let ckpt = Checkpoint::from_snapshot(watermark, epoch, self.capacity, &snapshot);
        match p.install_base(&ckpt) {
            Ok(_) => {
                if lineage > mine {
                    let _ = cots_persist::store_lineage(p.dir(), lineage);
                    self.lineage.store(lineage, Ordering::Release);
                }
                let total = snapshot.total();
                self.base.install(Arc::new(snapshot), total);
                self.base_watermark.store(watermark, Ordering::Release);
                self.repl_counters.snapshots.fetch_add(1, Ordering::Relaxed);
                self.repl_counters
                    .resync_required
                    .store(false, Ordering::Release);
                Response::ReplAck { ack_seq: watermark }
            }
            Err(e) => Response::Error {
                message: format!("catch-up snapshot install failed: {e}"),
            },
        }
    }

    /// Answer a query from the published snapshot.
    fn answer(&self, q: QueryReq) -> Response {
        let (snap, stamp) = self.published();
        let entries = match q {
            QueryReq::Point { key } => snap.get(&key).into_iter().copied().collect(),
            QueryReq::Frequent { phi } => {
                if !(phi > 0.0 && phi < 1.0) {
                    return Response::Error {
                        message: format!("phi must be in (0, 1), got {phi}"),
                    };
                }
                snap.frequent(Threshold::Fraction(phi))
            }
            QueryReq::TopK { k } => snap.top_k(k),
        };
        Response::Answer {
            entries,
            total: snap.total(),
            stamp,
        }
    }

    /// The current published snapshot plus its provenance stamp.
    fn published(&self) -> (Arc<cots::StampedSnapshot<u64>>, QueryStamp) {
        let snap = self.publisher.current();
        let stamp = self.stamp_for(&snap);
        (snap, stamp)
    }

    /// Provenance stamp for an arbitrary (possibly pinned) snapshot.
    fn stamp_for(&self, snap: &cots::StampedSnapshot<u64>) -> QueryStamp {
        QueryStamp {
            epoch: snap.epoch,
            captured_total: snap.captured_total,
            staleness: self.total_processed().saturating_sub(snap.captured_total),
            rotations: snap.rotations,
        }
    }

    /// Current service statistics.
    pub fn stats(&self) -> ServiceReport {
        let snap = self.publisher.current();
        let staleness = self.total_processed().saturating_sub(snap.captured_total);
        let mut report = self.tally.report(
            &self.pool.tallies,
            snap.epoch,
            staleness,
            self.backend.monitored(),
            self.recovery.clone(),
            self.persistence.as_ref().map(|p| p.tally.report()),
        );
        report.repl = self.build_repl_report();
        report
    }

    /// Assemble the replication section of `STATS`: the shipper's report
    /// when one is live (primary side), synthesized from the applier
    /// counters otherwise (standby side); role and promotion count are
    /// always this instance's own.
    fn build_repl_report(&self) -> Option<ReplReport> {
        let c = &self.repl_counters;
        let streamed_batches = c.streamed_batches.load(Ordering::Relaxed);
        let streamed_keys = c.streamed_keys.load(Ordering::Relaxed);
        let duplicates = c.duplicates.load(Ordering::Relaxed);
        let snapshots = c.snapshots.load(Ordering::Relaxed);
        let shipped = self.repl_report.lock().clone();
        let mut report = match shipped {
            Some(r) => r,
            None => {
                if !self.is_standby()
                    && streamed_batches == 0
                    && snapshots == 0
                    && self.promotions() == 0
                {
                    return None;
                }
                let watermark = self
                    .persistence
                    .as_ref()
                    .map(|p| p.next_seq())
                    .unwrap_or(0);
                ReplReport {
                    peer: self.repl_peer.clone(),
                    streamed_batches,
                    streamed_keys,
                    acked_seq: watermark,
                    next_seq: watermark,
                    ..ReplReport::default()
                }
            }
        };
        report.role = if self.is_standby() { "standby" } else { "primary" }.to_string();
        report.promotions = self.promotions();
        report.duplicates = report.duplicates.saturating_add(duplicates);
        report.snapshots = report.snapshots.saturating_add(snapshots);
        report.lineage = self.lineage();
        report.resync_required =
            report.resync_required || c.resync_required.load(Ordering::Acquire);
        Some(report)
    }

    /// Drain and stop: signal shutdown, wait for shard workers (all
    /// connections must already be closed for their rings to close),
    /// quiesce the backend, and publish a final exact snapshot.
    ///
    /// Call after every [`ShardSender`] for this service has been
    /// dropped; workers wait for live rings to close before exiting.
    pub fn drain(mut self) {
        self.begin_shutdown();
        self.pool.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(r) = self.refresher.take() {
            let _ = r.join();
        }
        if let Some(c) = self.checkpointer.take() {
            let _ = c.join();
        }
        self.backend.finalize();
        let (snapshot, total, rotations) =
            capture_merged(&self.backend, &self.base, self.capacity);
        self.publisher.publish(snapshot, total, rotations);
        // Workers are gone, so the final checkpoint captures the exact
        // quiescent state; a clean restart replays an empty WAL tail.
        if let Some(p) = &self.persistence {
            let (b, _) = self.base.get();
            if let Err(e) = p.checkpoint_now(&self.backend, b.as_deref(), &self.publisher) {
                eprintln!("cots-serve: final checkpoint failed: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(service: &Service, sender: &mut ShardSender, keys: &[u64], batch: usize) {
        let mut sent = 0;
        while sent < keys.len() {
            let end = (sent + batch).min(keys.len());
            match service.handle(
                Request::Ingest {
                    keys: keys[sent..end].to_vec(),
                },
                sender,
            ) {
                Response::IngestAck { enqueued } => {
                    assert_eq!(enqueued as usize, end - sent);
                    sent = end;
                }
                Response::Overloaded => std::thread::yield_now(),
                other => panic!("unexpected ingest response: {other:?}"),
            }
        }
    }

    fn await_applied(service: &Service, n: u64) {
        for _ in 0..10_000 {
            let stats = service.stats();
            if stats.applied_keys() == n && stats.staleness == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("service did not quiesce at {n} applied keys");
    }

    /// Wait until the publisher epoch holds still (the refresher's
    /// confirming publish after quiescence has landed).
    fn settled_epoch(service: &Service) -> u64 {
        for _ in 0..1_000 {
            let epoch = service.publisher.epoch();
            std::thread::sleep(Duration::from_millis(25));
            if service.publisher.epoch() == epoch {
                return epoch;
            }
        }
        panic!("publisher epoch never settled");
    }

    #[test]
    fn ingest_then_query_round_trip() {
        let service = Service::start(ServiceConfig {
            shards: 2,
            capacity: 64,
            refresh: Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        let keys: Vec<u64> = (0..20_000u64).map(|i| i % 40).collect();
        drive(&service, &mut sender, &keys, 512);
        await_applied(&service, 20_000);

        match service.handle(Request::Query(QueryReq::Point { key: 7 }), &mut sender) {
            Response::Answer {
                entries,
                total,
                stamp,
            } => {
                assert_eq!(total, 20_000);
                assert_eq!(stamp.staleness, 0);
                assert!(stamp.epoch > 0);
                let e = &entries[0];
                // 20_000 / 40 occurrences of each key; Space Saving
                // guarantee at quiescence with capacity > distinct keys.
                assert_eq!(e.count - e.error, 500);
            }
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(
            Request::Query(QueryReq::Frequent { phi: 0.02 }),
            &mut sender,
        ) {
            Response::Answer { entries, .. } => {
                assert_eq!(entries.len(), 40, "all keys hold exactly 2.5% mass");
            }
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(Request::Query(QueryReq::TopK { k: 5 }), &mut sender) {
            Response::Answer { entries, .. } => assert_eq!(entries.len(), 5),
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(Request::Stats, &mut sender) {
            Response::Stats(report) => {
                assert_eq!(report.ingested_keys, 20_000);
                assert_eq!(report.applied_keys(), 20_000);
                assert_eq!(report.queries, 3);
                assert_eq!(report.shards.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(Request::Shutdown, &mut sender) {
            Response::ShuttingDown => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(service.shutdown_requested());
        drop(sender);
        service.drain();
    }

    #[test]
    fn handshake_gates_real_connections() {
        let service = Service::start(ServiceConfig {
            shards: 1,
            capacity: 16,
            refresh: Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();

        // Any operation before HELLO is rejected and the connection closes.
        let mut conn = ConnState::new();
        let reply = service.serve(Request::Stats, &mut conn, &mut sender);
        match reply.response {
            Response::UnsupportedVersion {
                supported,
                requested,
            } => {
                assert_eq!(supported, PROTO_VERSION);
                assert_eq!(requested, 0, "no HELLO at all is flagged as version 0");
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(reply.close);
        assert!(!conn.is_greeted());

        // An unsupported version is named in the rejection.
        let mut conn = ConnState::new();
        let reply = service.serve(
            Request::Hello {
                proto_version: 1,
                features: vec![],
            },
            &mut conn,
            &mut sender,
        );
        assert!(matches!(
            reply.response,
            Response::UnsupportedVersion { requested: 1, .. }
        ));
        assert!(reply.close);

        // The proper handshake opens the connection for business.
        let mut conn = ConnState::new();
        let reply = service.serve(
            Request::Hello {
                proto_version: PROTO_VERSION,
                features: vec!["snapshot-page".into()],
            },
            &mut conn,
            &mut sender,
        );
        match reply.response {
            Response::HelloAck {
                proto_version,
                features,
            } => {
                assert_eq!(proto_version, PROTO_VERSION);
                assert!(features.iter().any(|f| f == "snapshot-page"));
            }
            other => panic!("unexpected: {other:?}"),
        }
        assert!(!reply.close);
        assert!(conn.is_greeted());
        let reply = service.serve(Request::Stats, &mut conn, &mut sender);
        assert!(matches!(reply.response, Response::Stats(_)));
        assert!(!reply.close);

        // Shutdown still closes through the serve path.
        let reply = service.serve(Request::Shutdown, &mut conn, &mut sender);
        assert!(matches!(reply.response, Response::ShuttingDown));
        assert!(reply.close);
        drop(sender);
        service.drain();
    }

    #[test]
    fn snapshot_pages_stay_pinned_across_republishes() {
        let service = Service::start(ServiceConfig {
            shards: 1,
            capacity: 64,
            refresh: Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        let mut conn = ConnState::pre_greeted();
        let keys: Vec<u64> = (0..1_000u64).map(|i| i % 10).collect();
        drive(&service, &mut sender, &keys, 128);
        await_applied(&service, 1_000);

        // First page pins the current snapshot.
        let first = service.serve(
            Request::SnapshotPage {
                since_epoch: 0,
                offset: 0,
                limit: 4,
            },
            &mut conn,
            &mut sender,
        );
        let (first_epoch, first_entries) = match first.response {
            Response::SnapshotPage {
                entries,
                stamp,
                total_entries,
                done,
                ..
            } => {
                assert_eq!(total_entries, 10);
                assert!(!done);
                (stamp.epoch, entries)
            }
            other => panic!("unexpected: {other:?}"),
        };
        assert_eq!(first_entries.len(), 4);

        // New data publishes new epochs underneath the transfer...
        drive(&service, &mut sender, &keys, 128);
        await_applied(&service, 2_000);
        assert!(service.publisher.epoch() > first_epoch);

        // ...but later pages still read the pinned snapshot.
        let second = service.serve(
            Request::SnapshotPage {
                since_epoch: 0,
                offset: 4,
                limit: 100,
            },
            &mut conn,
            &mut sender,
        );
        match second.response {
            Response::SnapshotPage {
                entries,
                stamp,
                total,
                done,
                ..
            } => {
                assert_eq!(stamp.epoch, first_epoch, "transfer stays on the pinned epoch");
                assert_eq!(total, 1_000, "pinned mass, not the republished one");
                assert_eq!(entries.len(), 6);
                assert!(done);
                assert!(
                    stamp.staleness >= 1_000,
                    "staleness against the pinned snapshot is honest: {}",
                    stamp.staleness
                );
            }
            other => panic!("unexpected: {other:?}"),
        }

        // Offset 0 re-pins; a holder of the fresh epoch gets `unchanged`.
        let epoch_now = settled_epoch(&service);
        let third = service.serve(
            Request::SnapshotPage {
                since_epoch: epoch_now,
                offset: 0,
                limit: 100,
            },
            &mut conn,
            &mut sender,
        );
        match third.response {
            Response::SnapshotPage {
                entries,
                unchanged,
                done,
                stamp,
                ..
            } => {
                assert!(unchanged && done && entries.is_empty());
                assert_eq!(stamp.epoch, epoch_now);
            }
            other => panic!("unexpected: {other:?}"),
        }
        drop(sender);
        service.drain();
    }

    #[test]
    fn invalid_phi_is_an_error_response() {
        let service = Service::start(ServiceConfig::default()).unwrap();
        let mut sender = service.connect();
        for phi in [0.0, 1.0, -0.5, f64::NAN] {
            match service.handle(Request::Query(QueryReq::Frequent { phi }), &mut sender) {
                Response::Error { .. } => {}
                other => panic!("phi={phi} should error, got {other:?}"),
            }
        }
        drop(sender);
        service.drain();
    }

    #[test]
    fn window_service_reports_rotations() {
        let service = Service::start(ServiceConfig {
            shards: 2,
            capacity: 64,
            window: Some(1_000),
            refresh: Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        let keys: Vec<u64> = (0..5_000u64).map(|i| i % 10).collect();
        drive(&service, &mut sender, &keys, 256);
        // Wait for full application (window applied counts live in the
        // shard tallies, not the window total, which also counts them).
        for _ in 0..10_000 {
            if service.stats().applied_keys() == 5_000 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Let the publisher observe the quiescent window.
        std::thread::sleep(Duration::from_millis(10));
        match service.handle(Request::Query(QueryReq::TopK { k: 10 }), &mut sender) {
            Response::Answer { stamp, total, .. } => {
                assert!(
                    stamp.rotations.unwrap() >= 9,
                    "5000 items over W=1000 rotate ≥9 times, saw {:?}",
                    stamp.rotations
                );
                assert!(total <= 1_000, "window bounds the answer mass");
            }
            other => panic!("unexpected: {other:?}"),
        }
        drop(sender);
        service.drain();
    }

    fn temp_data_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "cots-serve-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn persistent_service_recovers_across_restart() {
        let dir = temp_data_dir("svc");
        let persist = || {
            let mut opts = PersistOptions::new(dir.clone());
            // Keep the test deterministic: only explicit checkpoints.
            opts.checkpoint_every = Duration::ZERO;
            opts
        };
        let config = || ServiceConfig {
            shards: 2,
            capacity: 64,
            refresh: Duration::from_millis(2),
            persist: Some(persist()),
            ..Default::default()
        };

        // First life: ingest, checkpoint over the wire op, ingest more.
        let service = Service::start(config()).unwrap();
        assert_eq!(
            service.recovery_report().unwrap().recovered_items,
            0,
            "fresh directory recovers nothing"
        );
        let mut sender = service.connect();
        let keys: Vec<u64> = (0..10_000u64).map(|i| i % 25).collect();
        drive(&service, &mut sender, &keys, 256);
        await_applied(&service, 10_000);
        match service.handle(Request::Checkpoint, &mut sender) {
            Response::Checkpointed {
                watermark, total, ..
            } => {
                assert!(watermark > 0);
                assert_eq!(total, 10_000);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let more: Vec<u64> = (0..5_000u64).map(|i| i % 25).collect();
        drive(&service, &mut sender, &more, 256);
        await_applied(&service, 15_000);
        let epoch_before = service.publisher.epoch();
        drop(sender);
        service.drain();

        // Second life: everything durable comes back before queries run.
        let service = Service::start(config()).unwrap();
        let rec = service.recovery_report().unwrap().clone();
        assert_eq!(
            rec.recovered_items, 15_000,
            "drain checkpoint + WAL tail cover the full stream: {rec:?}"
        );
        assert_eq!(rec.torn_frames, 0);
        let mut sender = service.connect();
        match service.handle(Request::Query(QueryReq::Point { key: 7 }), &mut sender) {
            Response::Answer {
                entries,
                total,
                stamp,
            } => {
                assert_eq!(total, 15_000, "recovered mass is queryable immediately");
                assert_eq!(stamp.staleness, 0);
                assert!(
                    stamp.epoch > epoch_before,
                    "epochs stay monotone across restart ({} → {})",
                    epoch_before,
                    stamp.epoch
                );
                assert_eq!(entries[0].count - entries[0].error, 600);
            }
            other => panic!("unexpected: {other:?}"),
        }
        // New ingest keeps counting on top of the recovered base.
        let tail: Vec<u64> = (0..2_500u64).map(|i| i % 25).collect();
        drive(&service, &mut sender, &tail, 256);
        await_applied(&service, 2_500);
        match service.handle(Request::Query(QueryReq::Point { key: 7 }), &mut sender) {
            Response::Answer { entries, total, .. } => {
                assert_eq!(total, 17_500);
                assert_eq!(entries[0].count - entries[0].error, 700);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let stats = service.stats();
        let persist_stats = stats.persist.expect("persist tally present");
        assert!(persist_stats.wal_records > 0);
        assert!(stats.recovery.is_some());
        drop(sender);
        service.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Wait until the publisher has observed everything the backend
    /// applied (repl-applied keys bypass the shard tallies, so
    /// `await_applied` does not cover them).
    fn await_settled(service: &Service, total: u64) {
        for _ in 0..10_000 {
            let (snap, stamp) = service.published();
            if snap.total() == total && stamp.staleness == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("service never published total {total}");
    }

    #[test]
    fn standby_applies_repl_stream_and_promotes() {
        let dir = temp_data_dir("stdby");
        let mut opts = PersistOptions::new(dir.clone());
        opts.checkpoint_every = Duration::ZERO;
        let service = Service::start(ServiceConfig {
            shards: 1,
            capacity: 64,
            refresh: Duration::from_millis(2),
            persist: Some(opts),
            standby: true,
            repl_peer: Some("127.0.0.1:0".into()),
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        assert!(service.is_standby());

        // A standby refuses writes from clients...
        match service.handle(Request::Ingest { keys: vec![1, 2, 3] }, &mut sender) {
            Response::Error { message } => assert!(message.contains("standby")),
            other => panic!("unexpected: {other:?}"),
        }

        // ...but applies the replicated WAL stream, exactly once.
        let frames = |seqs: &[u64]| Request::ReplBatch {
            lineage: 0,
            batches: seqs
                .iter()
                .map(|&seq| ReplFrame {
                    seq,
                    keys: vec![7, 7, 9],
                })
                .collect(),
        };
        match service.handle(frames(&[0, 1]), &mut sender) {
            Response::ReplAck { ack_seq } => assert_eq!(ack_seq, 2),
            other => panic!("unexpected: {other:?}"),
        }
        // A duplicate run re-acks without double-counting; a gap stops
        // the run at the unchanged watermark.
        match service.handle(frames(&[0, 1, 2, 5]), &mut sender) {
            Response::ReplAck { ack_seq } => assert_eq!(ack_seq, 3, "gap at 5 stops the run"),
            other => panic!("unexpected: {other:?}"),
        }
        await_settled(&service, 9);
        match service.handle(Request::Query(QueryReq::Point { key: 7 }), &mut sender) {
            Response::Answer { entries, total, .. } => {
                assert_eq!(total, 9);
                assert_eq!(entries[0].count - entries[0].error, 6);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let repl = service.stats().repl.expect("standby reports repl state");
        assert_eq!(repl.role, "standby");
        assert_eq!(repl.streamed_batches, 3);
        assert_eq!(repl.duplicates, 2);

        // Promotion flips the role and reopens INGEST, without restart.
        match service.handle(Request::ReplPromote, &mut sender) {
            Response::ReplAck { ack_seq } => assert_eq!(ack_seq, 3),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(!service.is_standby());
        assert_eq!(service.promotions(), 1);
        assert_eq!(service.lineage(), 1, "promotion bumps the lineage");
        match service.handle(Request::Ingest { keys: vec![9] }, &mut sender) {
            Response::IngestAck { enqueued } => assert_eq!(enqueued, 1),
            other => panic!("unexpected: {other:?}"),
        }
        // A promoted primary no longer accepts the stream.
        match service.handle(frames(&[3]), &mut sender) {
            Response::Error { message } => assert!(message.contains("standby")),
            other => panic!("unexpected: {other:?}"),
        }
        drop(sender);
        service.drain();

        // The standby's own WAL copy is durable: a restart (as primary)
        // recovers everything that was acked.
        let mut opts = PersistOptions::new(dir.clone());
        opts.checkpoint_every = Duration::ZERO;
        let service = Service::start(ServiceConfig {
            shards: 1,
            capacity: 64,
            refresh: Duration::from_millis(2),
            persist: Some(opts),
            ..Default::default()
        })
        .unwrap();
        assert_eq!(service.recovery_report().unwrap().recovered_items, 10);
        assert_eq!(service.lineage(), 1, "the lineage bump survives restart");
        service.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn repl_snapshot_catches_up_an_empty_standby() {
        let dir = temp_data_dir("catchup");
        let mut opts = PersistOptions::new(dir.clone());
        opts.checkpoint_every = Duration::ZERO;
        let service = Service::start(ServiceConfig {
            shards: 1,
            capacity: 64,
            refresh: Duration::from_millis(2),
            persist: Some(opts),
            standby: true,
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        assert_eq!(service.repl_floor(), 0);

        let snap = Snapshot::new(
            vec![
                cots_core::CounterEntry::new(7u64, 40, 2),
                cots_core::CounterEntry::new(9u64, 10, 0),
            ],
            50,
        );
        match service.handle(
            Request::ReplSnapshot {
                lineage: 3,
                watermark: 12,
                snapshot: snap.clone(),
            },
            &mut sender,
        ) {
            Response::ReplAck { ack_seq } => assert_eq!(ack_seq, 12),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(service.repl_floor(), 12, "floor tracks the installed base");
        assert_eq!(service.lineage(), 3, "an empty standby adopts the lineage");
        // Re-sending the same snapshot is a duplicate, not an error.
        match service.handle(
            Request::ReplSnapshot {
                lineage: 3,
                watermark: 12,
                snapshot: snap,
            },
            &mut sender,
        ) {
            Response::ReplAck { ack_seq } => assert_eq!(ack_seq, 12),
            other => panic!("unexpected: {other:?}"),
        }
        // The WAL tail continues from the watermark.
        match service.handle(
            Request::ReplBatch {
                lineage: 3,
                batches: vec![ReplFrame {
                    seq: 12,
                    keys: vec![7, 7],
                }],
            },
            &mut sender,
        ) {
            Response::ReplAck { ack_seq } => assert_eq!(ack_seq, 13),
            other => panic!("unexpected: {other:?}"),
        }
        await_settled(&service, 52);
        match service.handle(Request::Query(QueryReq::Point { key: 7 }), &mut sender) {
            Response::Answer { entries, total, .. } => {
                assert_eq!(total, 52, "snapshot mass plus the shipped tail");
                assert_eq!(entries[0].count, 42);
            }
            other => panic!("unexpected: {other:?}"),
        }
        drop(sender);
        service.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn diverged_standby_refuses_stream_instead_of_acking() {
        let dir = temp_data_dir("diverge");
        let mut opts = PersistOptions::new(dir.clone());
        opts.checkpoint_every = Duration::ZERO;
        let service = Service::start(ServiceConfig {
            shards: 1,
            capacity: 64,
            refresh: Duration::from_millis(2),
            persist: Some(opts),
            standby: true,
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();

        // Seed the standby with three applied batches (watermark 3).
        match service.handle(
            Request::ReplBatch {
                lineage: 0,
                batches: (0..3)
                    .map(|seq| ReplFrame {
                        seq,
                        keys: vec![1, 2],
                    })
                    .collect(),
            },
            &mut sender,
        ) {
            Response::ReplAck { ack_seq } => assert_eq!(ack_seq, 3),
            other => panic!("unexpected: {other:?}"),
        }

        // Same lineage, primary watermark behind ours: the primary lost
        // a durable suffix. Refuse — acking would mark batches we never
        // saw as replicated.
        match service.handle(
            Request::ReplSubscribe {
                start_seq: 0,
                lineage: 0,
                next_seq: 1,
            },
            &mut sender,
        ) {
            Response::Error { message } => assert!(message.contains("ahead")),
            other => panic!("unexpected: {other:?}"),
        }
        let repl = service.stats().repl.expect("repl section present");
        assert!(repl.resync_required, "divergence is operator-visible");

        // Newer lineage against a standby that holds state: the classic
        // rejoined ex-primary. Refused with the fresh-dir instruction.
        match service.handle(
            Request::ReplSubscribe {
                start_seq: 0,
                lineage: 1,
                next_seq: 10,
            },
            &mut sender,
        ) {
            Response::Error { message } => assert!(message.contains("fresh data directory")),
            other => panic!("unexpected: {other:?}"),
        }

        // A mismatched-lineage batch is refused, never acked.
        match service.handle(
            Request::ReplBatch {
                lineage: 1,
                batches: vec![ReplFrame {
                    seq: 3,
                    keys: vec![9],
                }],
            },
            &mut sender,
        ) {
            Response::Error { message } => assert!(message.contains("lineage")),
            other => panic!("unexpected: {other:?}"),
        }

        // An older-lineage primary (pre-promotion ghost) is also refused
        // once this standby has moved on. Promote first to bump us to 1…
        // (use a fresh view: promotion flips the role, so re-subscribe
        // checks come from the would-be old primary's shipper)
        match service.handle(Request::ReplPromote, &mut sender) {
            Response::ReplAck { ack_seq } => assert_eq!(ack_seq, 3),
            other => panic!("unexpected: {other:?}"),
        }
        assert_eq!(service.lineage(), 1);
        let repl = service.stats().repl.expect("repl section present");
        assert!(!repl.resync_required, "promotion clears the flag");

        drop(sender);
        service.drain();

        // Restart with --standby on the same dir: lineage 1 persists,
        // and a lineage-0 primary is refused as stale.
        let mut opts = PersistOptions::new(dir.clone());
        opts.checkpoint_every = Duration::ZERO;
        let service = Service::start(ServiceConfig {
            shards: 1,
            capacity: 64,
            refresh: Duration::from_millis(2),
            persist: Some(opts),
            standby: true,
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        assert_eq!(service.lineage(), 1);
        match service.handle(
            Request::ReplSubscribe {
                start_seq: 0,
                lineage: 0,
                next_seq: 100,
            },
            &mut sender,
        ) {
            Response::Error { message } => assert!(message.contains("stale")),
            other => panic!("unexpected: {other:?}"),
        }
        // A same-lineage primary at or past our watermark streams fine,
        // and the subscribe clears any lingering resync flag.
        match service.handle(
            Request::ReplSubscribe {
                start_seq: 0,
                lineage: 1,
                next_seq: 3,
            },
            &mut sender,
        ) {
            Response::ReplAck { ack_seq } => assert_eq!(ack_seq, 3),
            other => panic!("unexpected: {other:?}"),
        }
        let repl = service.stats().repl.expect("repl section present");
        assert!(!repl.resync_required);
        drop(sender);
        service.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn primary_refuses_repl_stream() {
        let service = Service::start(ServiceConfig {
            shards: 1,
            capacity: 16,
            refresh: Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        match service.handle(
            Request::ReplSubscribe {
                start_seq: 0,
                lineage: 0,
                next_seq: 0,
            },
            &mut sender,
        ) {
            Response::Error { message } => assert!(message.contains("--standby")),
            other => panic!("unexpected: {other:?}"),
        }
        assert!(service.stats().repl.is_none(), "no repl section until used");
        drop(sender);
        service.drain();
    }

    #[test]
    fn standby_without_persistence_is_rejected() {
        let err = Service::start(ServiceConfig {
            standby: true,
            ..Default::default()
        });
        assert!(err.is_err(), "standby requires --data-dir");
    }

    #[test]
    fn window_plus_persistence_is_rejected() {
        let dir = temp_data_dir("win");
        let err = Service::start(ServiceConfig {
            window: Some(1_000),
            persist: Some(PersistOptions::new(dir.clone())),
            ..Default::default()
        });
        assert!(err.is_err(), "window + persistence must be refused");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
