//! The service: one backend, one shard pool, one snapshot publisher, and
//! the request → response logic shared by the TCP server and in-process
//! tests.
//!
//! Queries never touch the counting structures: they are answered from
//! the most recently *published* snapshot, so a query burst cannot block
//! ingestion (and vice versa — the publisher thread is the only reader
//! doing capture work). Every answer carries the snapshot's epoch and a
//! staleness bound: the number of items applied since that snapshot was
//! captured.
//!
//! With persistence enabled (`--data-dir`), startup recovers the durable
//! state *before* any listener opens: the newest valid checkpoint becomes
//! an immutable **base snapshot**, the WAL tail replays into the fresh
//! engine, and every published snapshot merges base + live through the
//! Space-Saving merge algebra — so post-recovery answers keep the
//! `count ≥ true ≥ count − error` envelope over everything recovered.
//!
//! AUDIT: locks — the request path must never block behind I/O holding a
//! lock; enforced by `cargo xtask audit` (lint-locks).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use cots::{CotsEngine, JumpingWindow, SnapshotPublisher};
use cots_core::merge::merge_snapshots;
use cots_core::{CotsConfig, CotsError, RecoveryReport, Result, ServiceReport, Snapshot, Threshold};
use cots_profiling::IngestTally;

use crate::persistence::{PersistOptions, Persistence};
use crate::protocol::{QueryReq, QueryStamp, Request, Response};
use crate::shard::{Backend, SendOutcome, ShardPool, ShardSender};

/// Service deployment knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Shard worker threads.
    pub shards: usize,
    /// Counter budget of the summary (`m`).
    pub capacity: usize,
    /// `Some(w)` serves a jumping window of `w` elements instead of the
    /// full history.
    pub window: Option<u64>,
    /// Snapshot publish cadence.
    pub refresh: Duration,
    /// Ring capacity per (connection, shard), in batches.
    pub queue_batches: usize,
    /// Durable checkpoints + WAL under a data directory. Not supported
    /// together with `window` (only the full-history engine persists).
    pub persist: Option<PersistOptions>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        Self {
            shards: 4,
            capacity: 1_000,
            window: None,
            refresh: Duration::from_millis(20),
            queue_batches: 64,
            persist: None,
        }
    }
}

/// A running service instance (workers + publisher thread).
pub struct Service {
    backend: Backend,
    pool: Arc<ShardPool>,
    publisher: Arc<SnapshotPublisher<u64>>,
    tally: Arc<IngestTally>,
    shutdown: Arc<AtomicBool>,
    workers: Vec<JoinHandle<()>>,
    refresher: Option<JoinHandle<()>>,
    checkpointer: Option<JoinHandle<()>>,
    persistence: Option<Arc<Persistence>>,
    /// Recovered checkpoint summary, merged into every published snapshot.
    base: Option<Arc<Snapshot<u64>>>,
    /// Stream mass the base snapshot accounts for.
    base_total: u64,
    recovery: Option<RecoveryReport>,
    capacity: usize,
}

/// Capture the backend and merge the recovery base in, returning
/// `(snapshot, captured_total, rotations)` in publishable form.
fn capture_merged(
    backend: &Backend,
    base: Option<&Snapshot<u64>>,
    base_total: u64,
    capacity: usize,
) -> (Snapshot<u64>, u64, Option<u64>) {
    let (live, live_total, rotations) = backend.capture();
    match base {
        Some(b) => (
            merge_snapshots(&[b.clone(), live], capacity),
            base_total + live_total,
            rotations,
        ),
        None => (live, live_total, rotations),
    }
}

impl Service {
    /// Recover durable state (when configured), build the backend, and
    /// spawn shard workers plus the publisher and checkpointer threads.
    pub fn start(config: ServiceConfig) -> Result<Self> {
        let engine_config = CotsConfig::for_capacity(config.capacity)?;
        let publisher = Arc::new(SnapshotPublisher::new());
        let mut base: Option<Arc<Snapshot<u64>>> = None;
        let mut base_total = 0u64;
        let mut recovery: Option<RecoveryReport> = None;
        let mut persistence: Option<Arc<Persistence>> = None;

        let backend = match (&config.persist, config.window) {
            (Some(_), Some(_)) => {
                return Err(CotsError::InvalidConfig(
                    "persistence (--data-dir) is not supported with --window: \
                     only the full-history engine checkpoints"
                        .into(),
                ))
            }
            (Some(opts), None) => {
                let rec = cots_persist::recover(&opts.data_dir)?;
                let engine = Arc::new(CotsEngine::new(engine_config)?);
                for batch in &rec.batches {
                    engine.delegate_batch(&batch.keys);
                }
                engine.finalize();
                #[cfg(feature = "invariants")]
                engine.check_quiescent_invariants();
                if let Some(ckpt) = &rec.base {
                    publisher.resume_from(ckpt.epoch);
                    let snap = ckpt.snapshot();
                    #[cfg(feature = "invariants")]
                    {
                        use cots_core::CheckInvariants;
                        let violations = snap.violations();
                        if let Some(v) = violations.first() {
                            return Err(CotsError::Report(format!(
                                "recovered checkpoint failed invariant audit: {v}"
                            )));
                        }
                    }
                    base_total = snap.total();
                    base = Some(Arc::new(snap));
                }
                persistence = Some(Arc::new(Persistence::new(
                    opts,
                    rec.next_seq,
                    config.capacity,
                )?));
                recovery = Some(rec.report);
                Backend::Engine(engine)
            }
            (None, None) => Backend::Engine(Arc::new(CotsEngine::new(engine_config)?)),
            (None, Some(w)) => Backend::Window(Arc::new(JumpingWindow::new(engine_config, w)?)),
        };

        // Publish the recovered (or empty) state synchronously so the
        // first query ever answered already sees it.
        {
            let (snapshot, total, rotations) =
                capture_merged(&backend, base.as_deref(), base_total, config.capacity);
            publisher.publish(snapshot, total, rotations);
        }

        let pool = ShardPool::new(config.shards, config.queue_batches);
        let workers = pool.spawn_workers(&backend, persistence.clone());
        let shutdown = Arc::new(AtomicBool::new(false));
        let refresher = {
            let backend = backend.clone();
            let publisher = publisher.clone();
            let shutdown = shutdown.clone();
            let base = base.clone();
            let capacity = config.capacity;
            let refresh = config.refresh;
            std::thread::Builder::new()
                .name("cots-publisher".into())
                .spawn(move || {
                    while !shutdown.load(Ordering::Acquire) {
                        let (snapshot, total, rotations) =
                            capture_merged(&backend, base.as_deref(), base_total, capacity);
                        publisher.publish(snapshot, total, rotations);
                        std::thread::sleep(refresh);
                    }
                    // One final publish so post-drain queries see the
                    // quiescent state with zero staleness.
                    let (snapshot, total, rotations) =
                        capture_merged(&backend, base.as_deref(), base_total, capacity);
                    publisher.publish(snapshot, total, rotations);
                })
                .map_err(|e| CotsError::Report(format!("spawn publisher: {e}")))?
        };
        let checkpointer = match (&persistence, &config.persist) {
            (Some(p), Some(opts)) if !opts.checkpoint_every.is_zero() => {
                let p = p.clone();
                let backend = backend.clone();
                let publisher = publisher.clone();
                let shutdown = shutdown.clone();
                let base = base.clone();
                let every = opts.checkpoint_every;
                Some(
                    std::thread::Builder::new()
                        .name("cots-checkpointer".into())
                        .spawn(move || {
                            let mut last = Instant::now();
                            while !shutdown.load(Ordering::Acquire) {
                                std::thread::sleep(Duration::from_millis(20));
                                if last.elapsed() < every {
                                    continue;
                                }
                                last = Instant::now();
                                if let Err(e) =
                                    p.checkpoint_now(&backend, base.as_deref(), &publisher)
                                {
                                    eprintln!("cots-serve: background checkpoint failed: {e}");
                                }
                            }
                        })
                        .map_err(|e| CotsError::Report(format!("spawn checkpointer: {e}")))?,
                )
            }
            _ => None,
        };
        Ok(Self {
            backend,
            pool,
            publisher,
            tally: Arc::new(IngestTally::new()),
            shutdown,
            workers,
            refresher: Some(refresher),
            checkpointer,
            persistence,
            base,
            base_total,
            recovery,
            capacity: config.capacity,
        })
    }

    /// The recovery accounting from startup, when persistence is on.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// Total items the service accounts for: recovered base mass plus
    /// everything the backend applied since this process started.
    fn total_processed(&self) -> u64 {
        self.base_total + self.backend.processed()
    }

    /// Register a new connection with the shard pool.
    pub fn connect(&self) -> ShardSender {
        self.pool.connect()
    }

    /// Whether graceful shutdown has been requested.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Request graceful shutdown (idempotent). Connections observe it via
    /// [`Service::shutdown_requested`] and close; closing their rings
    /// lets the (also signalled) shard workers drain and exit.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
        self.pool.begin_shutdown();
    }

    /// Handle one request on behalf of a connection.
    pub fn handle(&self, request: Request, sender: &mut ShardSender) -> Response {
        match request {
            Request::Ingest { keys } => match sender.send(&keys) {
                SendOutcome::Enqueued => {
                    self.tally.ingest(keys.len() as u64);
                    Response::IngestAck {
                        enqueued: keys.len() as u64,
                    }
                }
                SendOutcome::Overloaded => {
                    self.tally.reject();
                    Response::Overloaded
                }
            },
            Request::Query(q) => {
                self.tally.query();
                self.answer(q)
            }
            Request::Stats => Response::Stats(self.stats()),
            Request::Snapshot => {
                let (snap, stamp) = self.published();
                Response::Snapshot {
                    snapshot: snap.snapshot.clone(),
                    stamp,
                }
            }
            Request::Checkpoint => match &self.persistence {
                Some(p) => match p.checkpoint_now(&self.backend, self.base.as_deref(), &self.publisher)
                {
                    Ok((watermark, total, bytes)) => Response::Checkpointed {
                        watermark,
                        total,
                        bytes,
                    },
                    Err(e) => Response::Error {
                        message: format!("checkpoint failed: {e}"),
                    },
                },
                None => Response::Error {
                    message: "service has no data directory (start with --data-dir)".into(),
                },
            },
            Request::Shutdown => {
                self.begin_shutdown();
                Response::ShuttingDown
            }
        }
    }

    /// Answer a query from the published snapshot.
    fn answer(&self, q: QueryReq) -> Response {
        let (snap, stamp) = self.published();
        let entries = match q {
            QueryReq::Point { key } => snap.get(&key).into_iter().copied().collect(),
            QueryReq::Frequent { phi } => {
                if !(phi > 0.0 && phi < 1.0) {
                    return Response::Error {
                        message: format!("phi must be in (0, 1), got {phi}"),
                    };
                }
                snap.frequent(Threshold::Fraction(phi))
            }
            QueryReq::TopK { k } => snap.top_k(k),
        };
        Response::Answer {
            entries,
            total: snap.total(),
            stamp,
        }
    }

    /// The current published snapshot plus its provenance stamp.
    fn published(&self) -> (Arc<cots::StampedSnapshot<u64>>, QueryStamp) {
        let snap = self.publisher.current();
        let stamp = QueryStamp {
            epoch: snap.epoch,
            captured_total: snap.captured_total,
            staleness: self.total_processed().saturating_sub(snap.captured_total),
            rotations: snap.rotations,
        };
        (snap, stamp)
    }

    /// Current service statistics.
    pub fn stats(&self) -> ServiceReport {
        let snap = self.publisher.current();
        let staleness = self.total_processed().saturating_sub(snap.captured_total);
        self.tally.report(
            &self.pool.tallies,
            snap.epoch,
            staleness,
            self.backend.monitored(),
            self.recovery.clone(),
            self.persistence.as_ref().map(|p| p.tally.report()),
        )
    }

    /// Drain and stop: signal shutdown, wait for shard workers (all
    /// connections must already be closed for their rings to close),
    /// quiesce the backend, and publish a final exact snapshot.
    ///
    /// Call after every [`ShardSender`] for this service has been
    /// dropped; workers wait for live rings to close before exiting.
    pub fn drain(mut self) {
        self.begin_shutdown();
        self.pool.begin_shutdown();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
        if let Some(r) = self.refresher.take() {
            let _ = r.join();
        }
        if let Some(c) = self.checkpointer.take() {
            let _ = c.join();
        }
        self.backend.finalize();
        let (snapshot, total, rotations) =
            capture_merged(&self.backend, self.base.as_deref(), self.base_total, self.capacity);
        self.publisher.publish(snapshot, total, rotations);
        // Workers are gone, so the final checkpoint captures the exact
        // quiescent state; a clean restart replays an empty WAL tail.
        if let Some(p) = &self.persistence {
            if let Err(e) = p.checkpoint_now(&self.backend, self.base.as_deref(), &self.publisher) {
                eprintln!("cots-serve: final checkpoint failed: {e}");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drive(service: &Service, sender: &mut ShardSender, keys: &[u64], batch: usize) {
        let mut sent = 0;
        while sent < keys.len() {
            let end = (sent + batch).min(keys.len());
            match service.handle(
                Request::Ingest {
                    keys: keys[sent..end].to_vec(),
                },
                sender,
            ) {
                Response::IngestAck { enqueued } => {
                    assert_eq!(enqueued as usize, end - sent);
                    sent = end;
                }
                Response::Overloaded => std::thread::yield_now(),
                other => panic!("unexpected ingest response: {other:?}"),
            }
        }
    }

    fn await_applied(service: &Service, n: u64) {
        for _ in 0..10_000 {
            let stats = service.stats();
            if stats.applied_keys() == n && stats.staleness == 0 {
                return;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        panic!("service did not quiesce at {n} applied keys");
    }

    #[test]
    fn ingest_then_query_round_trip() {
        let service = Service::start(ServiceConfig {
            shards: 2,
            capacity: 64,
            refresh: Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        let keys: Vec<u64> = (0..20_000u64).map(|i| i % 40).collect();
        drive(&service, &mut sender, &keys, 512);
        await_applied(&service, 20_000);

        match service.handle(Request::Query(QueryReq::Point { key: 7 }), &mut sender) {
            Response::Answer {
                entries,
                total,
                stamp,
            } => {
                assert_eq!(total, 20_000);
                assert_eq!(stamp.staleness, 0);
                assert!(stamp.epoch > 0);
                let e = &entries[0];
                // 20_000 / 40 occurrences of each key; Space Saving
                // guarantee at quiescence with capacity > distinct keys.
                assert_eq!(e.count - e.error, 500);
            }
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(
            Request::Query(QueryReq::Frequent { phi: 0.02 }),
            &mut sender,
        ) {
            Response::Answer { entries, .. } => {
                assert_eq!(entries.len(), 40, "all keys hold exactly 2.5% mass");
            }
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(Request::Query(QueryReq::TopK { k: 5 }), &mut sender) {
            Response::Answer { entries, .. } => assert_eq!(entries.len(), 5),
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(Request::Stats, &mut sender) {
            Response::Stats(report) => {
                assert_eq!(report.ingested_keys, 20_000);
                assert_eq!(report.applied_keys(), 20_000);
                assert_eq!(report.queries, 3);
                assert_eq!(report.shards.len(), 2);
            }
            other => panic!("unexpected: {other:?}"),
        }

        match service.handle(Request::Shutdown, &mut sender) {
            Response::ShuttingDown => {}
            other => panic!("unexpected: {other:?}"),
        }
        assert!(service.shutdown_requested());
        drop(sender);
        service.drain();
    }

    #[test]
    fn invalid_phi_is_an_error_response() {
        let service = Service::start(ServiceConfig::default()).unwrap();
        let mut sender = service.connect();
        for phi in [0.0, 1.0, -0.5, f64::NAN] {
            match service.handle(Request::Query(QueryReq::Frequent { phi }), &mut sender) {
                Response::Error { .. } => {}
                other => panic!("phi={phi} should error, got {other:?}"),
            }
        }
        drop(sender);
        service.drain();
    }

    #[test]
    fn window_service_reports_rotations() {
        let service = Service::start(ServiceConfig {
            shards: 2,
            capacity: 64,
            window: Some(1_000),
            refresh: Duration::from_millis(2),
            ..Default::default()
        })
        .unwrap();
        let mut sender = service.connect();
        let keys: Vec<u64> = (0..5_000u64).map(|i| i % 10).collect();
        drive(&service, &mut sender, &keys, 256);
        // Wait for full application (window applied counts live in the
        // shard tallies, not the window total, which also counts them).
        for _ in 0..10_000 {
            if service.stats().applied_keys() == 5_000 {
                break;
            }
            std::thread::sleep(Duration::from_millis(2));
        }
        // Let the publisher observe the quiescent window.
        std::thread::sleep(Duration::from_millis(10));
        match service.handle(Request::Query(QueryReq::TopK { k: 10 }), &mut sender) {
            Response::Answer { stamp, total, .. } => {
                assert!(
                    stamp.rotations.unwrap() >= 9,
                    "5000 items over W=1000 rotate ≥9 times, saw {:?}",
                    stamp.rotations
                );
                assert!(total <= 1_000, "window bounds the answer mass");
            }
            other => panic!("unexpected: {other:?}"),
        }
        drop(sender);
        service.drain();
    }

    fn temp_data_dir(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::AtomicU64;
        static NEXT: AtomicU64 = AtomicU64::new(0);
        std::env::temp_dir().join(format!(
            "cots-serve-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    #[test]
    fn persistent_service_recovers_across_restart() {
        let dir = temp_data_dir("svc");
        let persist = || {
            let mut opts = PersistOptions::new(dir.clone());
            // Keep the test deterministic: only explicit checkpoints.
            opts.checkpoint_every = Duration::ZERO;
            opts
        };
        let config = || ServiceConfig {
            shards: 2,
            capacity: 64,
            refresh: Duration::from_millis(2),
            persist: Some(persist()),
            ..Default::default()
        };

        // First life: ingest, checkpoint over the wire op, ingest more.
        let service = Service::start(config()).unwrap();
        assert_eq!(
            service.recovery_report().unwrap().recovered_items,
            0,
            "fresh directory recovers nothing"
        );
        let mut sender = service.connect();
        let keys: Vec<u64> = (0..10_000u64).map(|i| i % 25).collect();
        drive(&service, &mut sender, &keys, 256);
        await_applied(&service, 10_000);
        match service.handle(Request::Checkpoint, &mut sender) {
            Response::Checkpointed {
                watermark, total, ..
            } => {
                assert!(watermark > 0);
                assert_eq!(total, 10_000);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let more: Vec<u64> = (0..5_000u64).map(|i| i % 25).collect();
        drive(&service, &mut sender, &more, 256);
        await_applied(&service, 15_000);
        let epoch_before = service.publisher.epoch();
        drop(sender);
        service.drain();

        // Second life: everything durable comes back before queries run.
        let service = Service::start(config()).unwrap();
        let rec = service.recovery_report().unwrap().clone();
        assert_eq!(
            rec.recovered_items, 15_000,
            "drain checkpoint + WAL tail cover the full stream: {rec:?}"
        );
        assert_eq!(rec.torn_frames, 0);
        let mut sender = service.connect();
        match service.handle(Request::Query(QueryReq::Point { key: 7 }), &mut sender) {
            Response::Answer {
                entries,
                total,
                stamp,
            } => {
                assert_eq!(total, 15_000, "recovered mass is queryable immediately");
                assert_eq!(stamp.staleness, 0);
                assert!(
                    stamp.epoch > epoch_before,
                    "epochs stay monotone across restart ({} → {})",
                    epoch_before,
                    stamp.epoch
                );
                assert_eq!(entries[0].count - entries[0].error, 600);
            }
            other => panic!("unexpected: {other:?}"),
        }
        // New ingest keeps counting on top of the recovered base.
        let tail: Vec<u64> = (0..2_500u64).map(|i| i % 25).collect();
        drive(&service, &mut sender, &tail, 256);
        await_applied(&service, 2_500);
        match service.handle(Request::Query(QueryReq::Point { key: 7 }), &mut sender) {
            Response::Answer { entries, total, .. } => {
                assert_eq!(total, 17_500);
                assert_eq!(entries[0].count - entries[0].error, 700);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let stats = service.stats();
        let persist_stats = stats.persist.expect("persist tally present");
        assert!(persist_stats.wal_records > 0);
        assert!(stats.recovery.is_some());
        drop(sender);
        service.drain();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn window_plus_persistence_is_rejected() {
        let dir = temp_data_dir("win");
        let err = Service::start(ServiceConfig {
            window: Some(1_000),
            persist: Some(PersistOptions::new(dir.clone())),
            ..Default::default()
        });
        assert!(err.is_err(), "window + persistence must be refused");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
