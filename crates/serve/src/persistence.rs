//! Durability glue between the shard pipeline and `cots-persist`: the
//! write-ahead log shared by the shard workers, the ingest freeze gate,
//! and epoch-consistent checkpointing.
//!
//! ## The freeze gate
//!
//! A checkpoint must be an *exact prefix cut* of the WAL: every batch
//! with `seq < watermark` logged **and** applied, nothing past the
//! watermark reflected in the captured summary. Shard workers therefore
//! wrap each group (allocate sequence numbers → append to WAL → apply to
//! the engine) in a gate section. The checkpointer freezes the gate,
//! waits for in-flight groups to finish, reads `watermark = next_seq`,
//! captures the summary, and unfreezes — the ingest stall is the capture
//! walk, not the file write, which happens after the gate reopens.
//!
//! ## Loss model
//!
//! Batches are acked at *enqueue* time; a batch popped from a ring is
//! logged before it is applied. A crash can therefore lose (a) acked
//! batches still in rings and (b) the unsynced WAL tail (per the
//! [`FsyncPolicy`]). Both losses are one-sided under-counts; the
//! kill-and-recover e2e bounds them against ground truth.
//!
//! AUDIT: locks — the gate and the WAL lock are on the ingest path;
//! enforced by `cargo xtask audit` (lint-locks). The deliberate
//! I/O-under-lock sites below carry `LOCK-OK` justifications.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use cots::SnapshotPublisher;
use cots_core::merge::merge_snapshots;
use cots_core::{Result, Snapshot};
use cots_persist::{
    find_checkpoints, parse_checkpoint_name, prune_checkpoints, prune_wal, write_checkpoint,
    Checkpoint, FsyncPolicy, WalWriter, DEFAULT_SEGMENT_BYTES,
};
use cots_profiling::{PersistTally, ShardTally};

use crate::shard::Backend;

/// How many checkpoints to keep on disk: the newest plus one fallback in
/// case the newest is damaged.
const KEEP_CHECKPOINTS: usize = 2;

/// Durability knobs, enabled by `cots-serve --data-dir`.
#[derive(Debug, Clone)]
pub struct PersistOptions {
    /// Directory holding checkpoints and WAL segments.
    pub data_dir: PathBuf,
    /// When the WAL reaches stable storage.
    pub fsync: FsyncPolicy,
    /// Background checkpoint cadence; zero disables the background
    /// checkpointer (checkpoints then happen only via the `CHECKPOINT`
    /// wire op and at graceful drain).
    pub checkpoint_every: Duration,
    /// WAL segment rotation threshold, in bytes.
    pub segment_bytes: u64,
    /// Log multi-batch ring drains as one binary *run* record (one CRC
    /// frame per drain) instead of one record per batch. Either form
    /// replays on any build — this knob only trades record overhead
    /// against frame granularity (`--wal-records per-batch` disables).
    pub wal_runs: bool,
}

impl PersistOptions {
    /// Defaults for `data_dir`: grouped fsync, 5 s checkpoints, 8 MiB
    /// segments, run records on.
    pub fn new(data_dir: PathBuf) -> Self {
        Self {
            data_dir,
            fsync: FsyncPolicy::default(),
            checkpoint_every: Duration::from_secs(5),
            segment_bytes: DEFAULT_SEGMENT_BYTES,
            wal_runs: true,
        }
    }
}

#[derive(Debug, Default)]
struct GateState {
    frozen: bool,
    in_flight: u64,
}

/// Shared durability state of a running service.
pub struct Persistence {
    dir: PathBuf,
    capacity: usize,
    wal: Mutex<WalWriter>,
    /// Next batch sequence number. Allocated under the `wal` lock so the
    /// log file is sequence-ordered.
    next_seq: AtomicU64,
    gate: Mutex<GateState>,
    /// Signalled when the gate unfreezes (workers wait here).
    unfrozen: Condvar,
    /// Signalled when `in_flight` drops to zero (checkpointer waits).
    quiesced: Condvar,
    /// WAL/checkpoint counters for `STATS`.
    pub tally: PersistTally,
    /// Log multi-batch drains as one run record (see
    /// [`PersistOptions::wal_runs`]).
    wal_runs: bool,
    /// Serializes checkpointers (background thread vs. `CHECKPOINT` op).
    ckpt_lock: Mutex<()>,
    /// Oldest WAL sequence a replication peer still needs. Segments at
    /// or past this floor survive checkpoint pruning so the shipper can
    /// keep tailing them; `u64::MAX` (the default) means "no peer,
    /// prune on checkpoints alone".
    repl_retain: AtomicU64,
}

impl Persistence {
    /// Open the WAL at `next_seq` (from recovery) and assemble the gate.
    ///
    /// When a `repl-ack` file exists, the retention floor starts at its
    /// watermark rather than unpinned: the shipper hasn't connected yet
    /// after a restart, and a background checkpoint that pruned past the
    /// standby's persisted place would force a resync the standby did
    /// nothing to deserve. A damaged file reads as 0 — retain everything
    /// — which errs in the safe direction.
    pub fn new(opts: &PersistOptions, next_seq: u64, capacity: usize) -> Result<Self> {
        let wal = WalWriter::open(&opts.data_dir, next_seq, opts.fsync, opts.segment_bytes)?;
        let repl_retain = if cots_persist::has_ack(&opts.data_dir) {
            cots_persist::load_ack(&opts.data_dir)
        } else {
            u64::MAX
        };
        Ok(Self {
            dir: opts.data_dir.clone(),
            capacity,
            wal: Mutex::new(wal),
            next_seq: AtomicU64::new(next_seq),
            gate: Mutex::new(GateState::default()),
            unfrozen: Condvar::new(),
            quiesced: Condvar::new(),
            tally: PersistTally::new(),
            wal_runs: opts.wal_runs,
            ckpt_lock: Mutex::new(()),
            repl_retain: AtomicU64::new(repl_retain),
        })
    }

    /// The data directory this instance logs into.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Next WAL sequence to be allocated — equivalently, the durable
    /// watermark: every batch below it is logged (and applied).
    pub fn next_seq(&self) -> u64 {
        self.next_seq.load(Ordering::Acquire)
    }

    /// Pin WAL retention for a replication peer: segments holding
    /// sequences ≥ `seq` survive checkpoint pruning. The shipper
    /// advances this as acks arrive; `u64::MAX` releases the pin.
    pub fn set_repl_retain(&self, seq: u64) {
        self.repl_retain.store(seq, Ordering::Release);
    }

    /// Log a drained group of batches, then apply them — all inside one
    /// gate section, so a checkpoint watermark always cuts between
    /// groups, never through one.
    ///
    /// WAL I/O failures are absorbed (counted, batch still applied): a
    /// full disk degrades durability, not liveness.
    pub fn log_and_apply(&self, burst: &mut Vec<Vec<u64>>, backend: &Backend, tally: &ShardTally) {
        self.gate_enter();
        {
            let mut wal = self.wal.lock();
            if self.wal_runs && burst.len() > 1 {
                // One reservation, one CRC frame for the whole drain.
                let first = self.next_seq.fetch_add(burst.len() as u64, Ordering::Relaxed);
                wal.append_run(first, burst);
                // On-disk footprint: 8 framing + 12 run header once, then
                // 12 + 8 per key for each batch (charged to the first).
                for (i, batch) in burst.iter().enumerate() {
                    let overhead = if i == 0 { 32 } else { 12 };
                    self.tally
                        .wal_record(batch.len() as u64, overhead + 8 * batch.len() as u64);
                }
            } else {
                for batch in burst.iter() {
                    let seq = self.next_seq.fetch_add(1, Ordering::Relaxed);
                    wal.append(seq, batch);
                    // On-disk footprint of this record: 8 framing + 12
                    // header + 8 per key.
                    self.tally.wal_record(batch.len() as u64, 20 + 8 * batch.len() as u64);
                }
            }
            // LOCK-OK: committing under the wal lock is the design — the
            // WAL is one sequential file, writers must not interleave
            // records, and the hold is bounded by the burst size. Contention
            // is between shard workers only; the request path never takes
            // this lock.
            match wal.commit() {
                Ok(stats) => {
                    if stats.synced {
                        self.tally.wal_sync();
                    }
                }
                Err(_) => self.tally.io_error(),
            }
        }
        for batch in burst.drain(..) {
            backend.apply(&batch);
            tally.batch(batch.len() as u64);
        }
        self.gate_exit();
    }

    /// Log one *replicated* batch at the primary's sequence number, then
    /// apply it — the standby's half of WAL shipping. Returns `true` only
    /// when `seq` is exactly the next expected sequence; duplicates
    /// (`seq` below the watermark) and gaps are rejected untouched so the
    /// caller can ack the real watermark and let the shipper resolve.
    ///
    /// Same gate discipline and loss model as [`Self::log_and_apply`]:
    /// the batch is durable per the [`FsyncPolicy`] once this returns,
    /// and WAL I/O failures degrade durability, never liveness.
    pub fn log_external_and_apply(&self, seq: u64, keys: &[u64], backend: &Backend) -> bool {
        self.gate_enter();
        let accepted = {
            let mut wal = self.wal.lock();
            // Read under the wal lock: local ingest allocates from
            // `next_seq` under this same lock, so the comparison is
            // stable for the duration of the append.
            if seq != self.next_seq.load(Ordering::Acquire) {
                false
            } else {
                wal.append(seq, keys);
                self.tally.wal_record(keys.len() as u64, 20 + 8 * keys.len() as u64);
                // LOCK-OK: same single-sequential-file design as
                // `log_and_apply` — records must not interleave, and the
                // request path of a *standby* is the replication stream
                // itself, so this hold is the ingest path, not behind it.
                match wal.commit() {
                    Ok(stats) => {
                        if stats.synced {
                            self.tally.wal_sync();
                        }
                    }
                    Err(_) => self.tally.io_error(),
                }
                self.next_seq.store(seq + 1, Ordering::Release);
                true
            }
        };
        if accepted {
            backend.apply(keys);
        }
        self.gate_exit();
        accepted
    }

    /// Install a catch-up base checkpoint shipped by a primary: persist
    /// it and advance the durable watermark to its cut. Only callable on
    /// an empty log (`next_seq == 0`); the in-memory base swap is the
    /// caller's job.
    ///
    /// Returns the committed file size.
    pub fn install_base(&self, ckpt: &Checkpoint) -> Result<u64> {
        let _serialize = self.ckpt_lock.lock();
        if self.next_seq.load(Ordering::Acquire) != 0 {
            return Err(cots_core::CotsError::Report(
                "catch-up snapshot refused: the log is not empty".into(),
            ));
        }
        let (_, bytes) = write_checkpoint(&self.dir, ckpt).inspect_err(|_| {
            self.tally.io_error();
        })?;
        self.tally.checkpoint(ckpt.watermark);
        self.next_seq.store(ckpt.watermark, Ordering::Release);
        Ok(bytes)
    }

    fn gate_enter(&self) {
        let mut gate = self.gate.lock();
        while gate.frozen {
            self.unfrozen.wait(&mut gate);
        }
        gate.in_flight += 1;
    }

    fn gate_exit(&self) {
        let mut gate = self.gate.lock();
        gate.in_flight -= 1;
        if gate.in_flight == 0 {
            self.quiesced.notify_all();
        }
    }

    /// Take one epoch-consistent checkpoint: freeze ingest, cut the
    /// watermark, capture the merged summary, unfreeze, then write and
    /// commit the file and prune state it makes redundant.
    ///
    /// Returns `(watermark, total_mass, file_bytes)`.
    pub fn checkpoint_now(
        &self,
        backend: &Backend,
        base: Option<&Snapshot<u64>>,
        publisher: &SnapshotPublisher<u64>,
    ) -> Result<(u64, u64, u64)> {
        self.checkpoint_full(backend, base, publisher)
            .map(|(watermark, total, bytes, _)| (watermark, total, bytes))
    }

    /// [`Self::checkpoint_now`], but also hand back the merged summary
    /// the checkpoint captured — the WAL shipper sends exactly this pair
    /// (`watermark`, summary) as a catch-up `REPL_SNAPSHOT`, so the
    /// transfer is consistent with the durable cut by construction.
    pub fn checkpoint_full(
        &self,
        backend: &Backend,
        base: Option<&Snapshot<u64>>,
        publisher: &SnapshotPublisher<u64>,
    ) -> Result<(u64, u64, u64, Snapshot<u64>)> {
        let _serialize = self.ckpt_lock.lock();

        {
            // LOCK-OK: ckpt_lock → gate is the one global lock order
            // (ckpt_lock is outermost everywhere); the gate hold here is
            // freeze + quiesce, no I/O.
            let mut gate = self.gate.lock();
            gate.frozen = true;
            while gate.in_flight > 0 {
                self.quiesced.wait(&mut gate);
            }
        }
        // Quiescent: every batch with seq < next_seq is logged and
        // applied; nothing else is.
        let watermark = self.next_seq.load(Ordering::Acquire);
        let (live, _, _) = backend.capture();
        // The log is forced before the checkpoint commits so the durable
        // state never has a checkpoint whose preceding WAL vanished.
        // LOCK-OK: the fsync must land while ingest is frozen — that is
        // the prefix-cut guarantee — so it deliberately runs under
        // ckpt_lock, and the transient wal guard orders after it
        // (ckpt_lock → wal, consistent with log_and_apply's wal-only use).
        let sync_result = self.wal.lock().sync();
        {
            // LOCK-OK: same acyclic ckpt_lock → gate order; this hold
            // only unfreezes and notifies.
            let mut gate = self.gate.lock();
            gate.frozen = false;
            self.unfrozen.notify_all();
        }
        // Ingest is live again; report I/O problems only now.
        match sync_result {
            Ok(()) => self.tally.wal_sync(),
            Err(e) => {
                self.tally.io_error();
                return Err(e);
            }
        }

        let merged = match base {
            Some(b) => merge_snapshots(&[b.clone(), live], self.capacity),
            None => live,
        };
        let epoch = publisher.epoch();
        let ckpt = Checkpoint::from_snapshot(watermark, epoch, self.capacity, &merged);
        let total = ckpt.total;
        let (_, bytes) = write_checkpoint(&self.dir, &ckpt).inspect_err(|_| {
            self.tally.io_error();
        })?;
        self.tally.checkpoint(watermark);

        // Prune what the new checkpoint made redundant. Best-effort: the
        // service stays correct with extra files around. A replication
        // peer's un-acked tail pins segments past its floor.
        let _ = prune_checkpoints(&self.dir, KEEP_CHECKPOINTS);
        if let Ok(kept) = find_checkpoints(&self.dir) {
            if let Some(oldest) = kept.last().and_then(|p| parse_checkpoint_name(p)) {
                let floor = oldest.min(self.repl_retain.load(Ordering::Acquire));
                let _ = prune_wal(&self.dir, floor);
            }
        }
        Ok((watermark, total, bytes, merged))
    }
}

impl std::fmt::Debug for Persistence {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Persistence")
            .field("dir", &self.dir)
            .field("next_seq", &self.next_seq.load(Ordering::Relaxed))
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cots::CotsEngine;
    use cots_core::CotsConfig;
    use std::sync::Arc;

    fn temp_dir(tag: &str) -> PathBuf {
        static NEXT: AtomicU64 = AtomicU64::new(0);
        let n = NEXT.fetch_add(1, Ordering::Relaxed);
        let dir = std::env::temp_dir().join(format!(
            "cots-serve-persist-{}-{}-{}",
            std::process::id(),
            tag,
            n
        ));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    fn engine_backend(capacity: usize) -> Backend {
        Backend::Engine(Arc::new(
            CotsEngine::new(CotsConfig::for_capacity(capacity).unwrap()).unwrap(),
        ))
    }

    #[test]
    fn log_apply_checkpoint_recover_cycle() {
        let dir = temp_dir("cycle");
        let opts = PersistOptions::new(dir.clone());
        let p = Persistence::new(&opts, 0, 64).unwrap();
        let backend = engine_backend(64);
        let shard_tally = ShardTally::new();
        let publisher = SnapshotPublisher::new();

        let mut burst = vec![vec![1u64, 1, 2], vec![3u64]];
        p.log_and_apply(&mut burst, &backend, &shard_tally);
        assert!(burst.is_empty());
        assert_eq!(shard_tally.keys_applied(), 4);
        assert_eq!(backend.processed(), 4);

        let (watermark, total, bytes) = p.checkpoint_now(&backend, None, &publisher).unwrap();
        assert_eq!(watermark, 2, "two batches logged before the cut");
        assert_eq!(total, 4);
        assert!(bytes > 0);

        // More batches after the checkpoint land in the WAL tail.
        let mut tail = vec![vec![9u64, 9]];
        p.log_and_apply(&mut tail, &backend, &shard_tally);
        drop(p);

        let rec = cots_persist::recover(&dir).unwrap();
        assert_eq!(rec.report.checkpoint_watermark, Some(2));
        assert_eq!(rec.report.base_items, 4);
        assert_eq!(rec.report.replayed_batches, 1);
        assert_eq!(rec.report.replayed_items, 2);
        assert_eq!(rec.report.recovered_items, 6);
        assert_eq!(rec.next_seq, 3);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoint_merges_base_and_live() {
        let dir = temp_dir("merge");
        let opts = PersistOptions::new(dir.clone());
        let p = Persistence::new(&opts, 10, 64).unwrap();
        let backend = engine_backend(64);
        let shard_tally = ShardTally::new();
        let publisher = SnapshotPublisher::new();
        publisher.resume_from(5);

        let base = Snapshot::new(vec![cots_core::CounterEntry::new(7u64, 40, 0)], 40);
        let mut burst = vec![vec![7u64; 10]];
        p.log_and_apply(&mut burst, &backend, &shard_tally);

        let (watermark, total, _) = p.checkpoint_now(&backend, Some(&base), &publisher).unwrap();
        assert_eq!(watermark, 11);
        assert_eq!(total, 50, "base mass plus live mass");
        let rec = cots_persist::recover(&dir).unwrap();
        let ckpt = rec.base.unwrap();
        assert_eq!(ckpt.epoch, 5, "publisher epoch carried into the checkpoint");
        let snap = ckpt.snapshot();
        let e = snap.get(&7).unwrap();
        assert_eq!(e.count, 50, "merge summed the key across base and live");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn checkpoints_prune_and_wal_is_truncated() {
        let dir = temp_dir("prune");
        let mut opts = PersistOptions::new(dir.clone());
        opts.segment_bytes = 64; // rotate aggressively
        let p = Persistence::new(&opts, 0, 64).unwrap();
        let backend = engine_backend(64);
        let shard_tally = ShardTally::new();
        let publisher = SnapshotPublisher::new();
        for round in 0..4u64 {
            let mut burst = vec![vec![round; 8], vec![round; 8]];
            p.log_and_apply(&mut burst, &backend, &shard_tally);
            p.checkpoint_now(&backend, None, &publisher).unwrap();
        }
        let ckpts = find_checkpoints(&dir).unwrap();
        assert_eq!(ckpts.len(), KEEP_CHECKPOINTS);
        let report = p.tally.report();
        assert_eq!(report.checkpoints, 4);
        assert_eq!(report.last_watermark, 8);
        assert_eq!(report.io_errors, 0);
        // Everything still recovers to the full mass.
        drop(p);
        let rec = cots_persist::recover(&dir).unwrap();
        assert_eq!(rec.report.recovered_items, 64);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn persisted_repl_ack_pins_retention_across_restart() {
        let dir = temp_dir("retain");
        let mut opts = PersistOptions::new(dir.clone());
        opts.segment_bytes = 64; // rotate aggressively
        {
            let p = Persistence::new(&opts, 0, 64).unwrap();
            let backend = engine_backend(64);
            let shard_tally = ShardTally::new();
            for round in 0..4u64 {
                let mut burst = vec![vec![round; 8], vec![round; 8]];
                p.log_and_apply(&mut burst, &backend, &shard_tally);
            }
        }
        // A standby acked up to 2 before both processes went down.
        cots_persist::store_ack(&dir, 2).unwrap();

        // Restart: before the shipper reconnects, checkpoints must not
        // prune past the persisted ack.
        let rec = cots_persist::recover(&dir).unwrap();
        let p = Persistence::new(&opts, rec.next_seq, 64).unwrap();
        let backend = engine_backend(64);
        let shard_tally = ShardTally::new();
        let publisher = SnapshotPublisher::new();
        for round in 0..4u64 {
            let mut burst = vec![vec![round; 8], vec![round; 8]];
            p.log_and_apply(&mut burst, &backend, &shard_tally);
            p.checkpoint_now(&backend, None, &publisher).unwrap();
        }
        let oldest = cots_persist::oldest_segment_seq(&dir)
            .unwrap()
            .expect("segments survive");
        assert!(
            oldest <= 2,
            "pruning must hold the standby's place (oldest {oldest} > ack 2)"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn run_records_recover_identically_to_per_batch_records() {
        // Same ingest, two on-disk grammars (and a mix, via the
        // single-batch bursts that stay legacy either way): recovery
        // must be indistinguishable.
        let mut recovered = Vec::new();
        for wal_runs in [true, false] {
            let dir = temp_dir(if wal_runs { "runs-on" } else { "runs-off" });
            let mut opts = PersistOptions::new(dir.clone());
            opts.wal_runs = wal_runs;
            {
                let p = Persistence::new(&opts, 0, 64).unwrap();
                let backend = engine_backend(64);
                let tally = ShardTally::new();
                let mut multi = vec![vec![1u64, 2, 3], vec![4u64], vec![]];
                p.log_and_apply(&mut multi, &backend, &tally);
                let mut single = vec![vec![5u64, 5]];
                p.log_and_apply(&mut single, &backend, &tally);
                assert_eq!(p.next_seq(), 4);
                let report = p.tally.report();
                assert_eq!(report.wal_records, 4, "records count logical batches");
                assert_eq!(report.wal_keys, 6);
            }
            let rec = cots_persist::recover(&dir).unwrap();
            assert_eq!(rec.next_seq, 4);
            assert_eq!(rec.report.replayed_batches, 4);
            assert_eq!(rec.report.replayed_items, 6);
            recovered.push((rec.next_seq, rec.batches));
            std::fs::remove_dir_all(&dir).unwrap();
        }
        assert_eq!(recovered[0], recovered[1], "recovery must not depend on record grammar");
    }

    #[test]
    fn gate_blocks_ingest_only_while_frozen() {
        let dir = temp_dir("gate");
        let opts = PersistOptions::new(dir.clone());
        let p = Arc::new(Persistence::new(&opts, 0, 64).unwrap());
        let backend = engine_backend(64);
        let publisher = SnapshotPublisher::new();
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..3)
            .map(|_| {
                let p = p.clone();
                let backend = backend.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let tally = ShardTally::new();
                    let mut n = 0u64;
                    while !stop.load(Ordering::Acquire) {
                        let mut burst = vec![vec![n % 16; 4]];
                        p.log_and_apply(&mut burst, &backend, &tally);
                        n += 1;
                    }
                    tally.keys_applied()
                })
            })
            .collect();
        // Checkpoints interleave with live ingest without deadlock.
        for _ in 0..5 {
            p.checkpoint_now(&backend, None, &publisher).unwrap();
            std::thread::sleep(Duration::from_millis(2));
        }
        stop.store(true, Ordering::Release);
        let applied: u64 = writers.into_iter().map(|w| w.join().unwrap()).sum();
        assert!(applied > 0);
        assert_eq!(backend.processed(), applied);
        // A final frozen cut sees exactly the applied mass.
        let (_, total, _) = p.checkpoint_now(&backend, None, &publisher).unwrap();
        assert_eq!(total, applied);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
