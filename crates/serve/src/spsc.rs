//! A bounded single-producer / single-consumer ring buffer.
//!
//! This is the backpressure primitive of the ingest pipeline: each
//! (connection, shard) pair gets its own ring, so every ring has exactly
//! one producer (the connection thread) and one consumer (the shard
//! worker). Strict SPSC keeps the fast path to two atomic loads and one
//! atomic store per side, with no CAS loops and no locks — the connection
//! thread can never be blocked by a slow shard, only told "full".
//!
//! The ring is all-or-nothing friendly: because the producer is the only
//! thread that ever *adds* items, the free space it observes can only
//! grow, so a capacity check followed by pushes cannot fail spuriously.
//!
//! Closing: dropping the [`Producer`] closes the ring; the consumer
//! drains whatever is left and then sees [`Pop::Closed`]. Dropping the
//! consumer lets remaining items be reclaimed when the last half drops.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

struct Inner<T> {
    /// Power-of-two slot array; slot `i & (cap-1)` holds position `i`.
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    /// Next position the consumer will read. Monotonically increasing;
    /// written only by the consumer.
    head: AtomicUsize,
    /// Next position the producer will write. Monotonically increasing;
    /// written only by the producer.
    tail: AtomicUsize,
    /// Set when the producer half drops.
    closed: AtomicBool,
}

// SAFETY: Inner is shared between exactly one producer and one consumer
// thread. All slot accesses are mediated by the head/tail protocol below
// (a slot is written only while tail reserves it and read only after the
// Release store of tail makes the write visible), so sending the halves
// to other threads is sound whenever T itself can be sent.
unsafe impl<T: Send> Send for Inner<T> {}
// SAFETY: see the Send impl; &Inner only exposes the atomic fields plus
// slot accesses guarded by the SPSC protocol.
unsafe impl<T: Send> Sync for Inner<T> {}

impl<T> Drop for Inner<T> {
    fn drop(&mut self) {
        // Reclaim items that were pushed but never popped. Both halves
        // are gone (we are the last owner), so plain loads suffice.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        let mask = self.buf.len() - 1;
        for pos in head..tail {
            // SAFETY: positions in [head, tail) were fully written by the
            // producer and not yet consumed, so each slot holds an
            // initialized T that no other code will touch again.
            unsafe { self.buf[pos & mask].get().cast::<T>().drop_in_place() };
        }
    }
}

/// Producer half; dropping it closes the ring.
pub struct Producer<T> {
    inner: Arc<Inner<T>>,
    /// Cached copy of `head` so the fast path skips the atomic load until
    /// the ring looks full.
    cached_head: usize,
}

/// Consumer half.
pub struct Consumer<T> {
    inner: Arc<Inner<T>>,
    /// Cached copy of `tail`, mirror of `Producer::cached_head`.
    cached_tail: usize,
}

/// Outcome of a [`Consumer::pop`].
#[derive(Debug, PartialEq, Eq)]
pub enum Pop<T> {
    /// An item.
    Item(T),
    /// Nothing available right now, but the producer is still alive.
    Empty,
    /// The producer is gone and the ring is drained; no item will ever
    /// arrive again.
    Closed,
}

/// Build a ring with room for `capacity` items (rounded up to a power of
/// two, minimum 2).
pub fn ring<T>(capacity: usize) -> (Producer<T>, Consumer<T>) {
    let cap = capacity.max(2).next_power_of_two();
    let buf: Box<[UnsafeCell<MaybeUninit<T>>]> = (0..cap)
        .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
        .collect();
    let inner = Arc::new(Inner {
        buf,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
        closed: AtomicBool::new(false),
    });
    (
        Producer {
            inner: inner.clone(),
            cached_head: 0,
        },
        Consumer {
            inner,
            cached_tail: 0,
        },
    )
}

impl<T> Producer<T> {
    /// Slots currently free from the producer's point of view. Because
    /// only this thread pushes, the true free count can only be larger.
    pub fn free(&mut self) -> usize {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        self.cached_head = self.inner.head.load(Ordering::Acquire);
        self.inner.buf.len() - (tail - self.cached_head)
    }

    /// Try to push one item; returns it back if the ring is full.
    pub fn try_push(&mut self, item: T) -> Result<(), T> {
        let tail = self.inner.tail.load(Ordering::Relaxed);
        if tail - self.cached_head == self.inner.buf.len() {
            // Looks full through the cache; refresh from the consumer.
            self.cached_head = self.inner.head.load(Ordering::Acquire);
            if tail - self.cached_head == self.inner.buf.len() {
                return Err(item);
            }
        }
        let mask = self.inner.buf.len() - 1;
        // SAFETY: position `tail` is not yet published (tail is stored
        // below) and `tail - head < cap` was just checked, so the slot is
        // vacant and no other thread can access it: the consumer stops at
        // the published tail and we are the only producer.
        unsafe { self.inner.buf[tail & mask].get().cast::<T>().write(item) };
        // Release-publish the write; the consumer's Acquire load of tail
        // makes the slot contents visible.
        self.inner.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }
}

impl<T> Drop for Producer<T> {
    fn drop(&mut self) {
        self.inner.closed.store(true, Ordering::Release);
    }
}

impl<T> Consumer<T> {
    /// Pop one item, or report empty / closed.
    pub fn pop(&mut self) -> Pop<T> {
        let head = self.inner.head.load(Ordering::Relaxed);
        if head == self.cached_tail {
            self.cached_tail = self.inner.tail.load(Ordering::Acquire);
            if head == self.cached_tail {
                // Check `closed` *after* the tail re-read: the producer
                // stores tail before its Drop stores closed, so seeing
                // closed here means no more items were (or will be)
                // published past cached_tail.
                if self.inner.closed.load(Ordering::Acquire) {
                    // One final tail re-read closes the race where the
                    // last push lands between our tail load and the
                    // producer's drop.
                    self.cached_tail = self.inner.tail.load(Ordering::Acquire);
                    if head == self.cached_tail {
                        return Pop::Closed;
                    }
                } else {
                    return Pop::Empty;
                }
            }
        }
        let mask = self.inner.buf.len() - 1;
        // SAFETY: `head < cached_tail` and tail was Acquire-loaded, so
        // position `head` was fully written and Release-published by the
        // producer; we are the only consumer, and storing head below is
        // what allows the producer to reuse the slot.
        let item = unsafe { self.inner.buf[head & mask].get().cast::<T>().read() };
        self.inner.head.store(head + 1, Ordering::Release);
        Pop::Item(item)
    }

    /// Items currently queued (racy; for statistics).
    pub fn len(&self) -> usize {
        let tail = self.inner.tail.load(Ordering::Acquire);
        let head = self.inner.head.load(Ordering::Relaxed);
        tail - head
    }

    /// True when no items are queued (racy; for statistics).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True once the producer half has dropped. Items may still be
    /// queued; [`Consumer::pop`] reports [`Pop::Closed`] only when the
    /// ring is also drained.
    pub fn is_closed(&self) -> bool {
        self.inner.closed.load(Ordering::Acquire)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = ring::<u32>(4);
        assert_eq!(tx.free(), 4);
        for i in 0..4 {
            tx.try_push(i).unwrap();
        }
        assert_eq!(tx.try_push(99).unwrap_err(), 99, "full ring rejects");
        assert_eq!(tx.free(), 0);
        for i in 0..4 {
            assert_eq!(rx.pop(), Pop::Item(i));
        }
        assert_eq!(rx.pop(), Pop::Empty);
        // Space freed by the consumer becomes visible to the producer.
        assert_eq!(tx.free(), 4);
    }

    #[test]
    fn close_drains_then_reports_closed() {
        let (mut tx, mut rx) = ring::<String>(8);
        tx.try_push("a".into()).unwrap();
        tx.try_push("b".into()).unwrap();
        drop(tx);
        assert!(rx.is_closed());
        assert_eq!(rx.pop(), Pop::Item("a".into()));
        assert_eq!(rx.pop(), Pop::Item("b".into()));
        assert_eq!(rx.pop(), Pop::Closed);
        assert_eq!(rx.pop(), Pop::Closed);
    }

    #[test]
    fn capacity_rounds_up() {
        let (mut tx, _rx) = ring::<u8>(3);
        assert_eq!(tx.free(), 4);
        let (mut tx1, _rx1) = ring::<u8>(0);
        assert_eq!(tx1.free(), 2);
    }

    #[test]
    fn unconsumed_items_are_dropped_with_the_ring() {
        let item = Arc::new(());
        let (mut tx, rx) = ring::<Arc<()>>(4);
        tx.try_push(item.clone()).unwrap();
        tx.try_push(item.clone()).unwrap();
        assert_eq!(Arc::strong_count(&item), 3);
        drop(tx);
        drop(rx);
        assert_eq!(Arc::strong_count(&item), 1, "ring drop reclaimed items");
    }

    #[test]
    fn two_thread_stress_preserves_sequence() {
        let (mut tx, mut rx) = ring::<u64>(64);
        const N: u64 = 200_000;
        let producer = std::thread::spawn(move || {
            let mut i = 0;
            while i < N {
                match tx.try_push(i) {
                    Ok(()) => i += 1,
                    Err(_) => std::hint::spin_loop(),
                }
            }
        });
        let mut expected = 0;
        loop {
            match rx.pop() {
                Pop::Item(v) => {
                    assert_eq!(v, expected);
                    expected += 1;
                }
                Pop::Empty => std::hint::spin_loop(),
                Pop::Closed => break,
            }
        }
        assert_eq!(expected, N);
        producer.join().unwrap();
    }
}
