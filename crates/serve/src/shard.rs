//! The sharded ingest pipeline: counting backend, per-shard workers, and
//! the per-connection senders that feed them.
//!
//! Topology: the service runs **one** shared counting backend (the CoTS
//! engine is concurrent by design — that is the paper's contribution) and
//! `shards` worker threads. Keys are partitioned to workers by
//! multiplicative hash, so every occurrence of a key is applied by the
//! same worker — hot keys always hit that worker's combining front-end,
//! which is exactly the locality the combiner exploits.
//!
//! Each connection gets one bounded SPSC ring *per shard* (strict
//! single-producer/single-consumer, no locks on the hot path). Workers
//! adopt newly registered rings from a small mutex-protected inbox,
//! drop rings whose connection has closed, and exit once shutdown is
//! signalled and every ring has drained — the graceful-drain guarantee.
//!
//! AUDIT: locks — the registry mutexes are touched off the hot path only
//! and must stay I/O-free; enforced by `cargo xtask audit` (lint-locks).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;

use cots::{CotsEngine, JumpingWindow};
use cots_core::{ConcurrentCounter, MulHash, Snapshot};
use cots_profiling::ShardTally;

use crate::persistence::Persistence;
use crate::spsc::{ring, Consumer, Pop, Producer};

/// Batches a worker drains from its rings before logging/applying them
/// as one group (one WAL commit, one gate section).
const DRAIN_BURST: usize = 32;

/// The counting structure behind the service.
#[derive(Clone)]
pub enum Backend {
    /// Unbounded history: one shared CoTS engine.
    Engine(Arc<CotsEngine<u64>>),
    /// Recency-scoped: a jumping window over an engine pair.
    Window(Arc<JumpingWindow<u64>>),
}

impl Backend {
    /// Apply a batch of keys.
    pub fn apply(&self, keys: &[u64]) {
        match self {
            Backend::Engine(e) => e.delegate_batch(keys),
            Backend::Window(w) => w.process_slice(keys),
        }
    }

    /// Items applied so far.
    pub fn processed(&self) -> u64 {
        match self {
            Backend::Engine(e) => e.processed(),
            Backend::Window(w) => w.processed(),
        }
    }

    /// Capture a queryable view: `(snapshot, captured_total, rotations)`.
    ///
    /// `captured_total` is the backend's *applied* counter — elements
    /// whose delegation call has returned — read *before* the drain and
    /// snapshot. Every element it counts was already flushed into the
    /// summary when it was read, so the snapshot taken afterwards covers
    /// at least that mass, and the staleness a client computes from it
    /// (`processed − captured_total`) is an upper bound on what the
    /// snapshot is missing. Reading `processed()` here instead would be
    /// unsound: that counter is bumped *before* a batch is applied, so a
    /// capture racing in-flight batches would over-claim and staleness
    /// could read 0 while heavy hitters are still short the in-flight
    /// mass. Safe (and designed to be called) while producers run.
    pub fn capture(&self) -> (Snapshot<u64>, u64, Option<u64>) {
        match self {
            Backend::Engine(e) => {
                let total = e.applied();
                e.drain_pending();
                (cots_core::QueryableSummary::snapshot(&**e), total, None)
            }
            Backend::Window(w) => {
                let total = w.applied();
                let snap = w.snapshot();
                let rotations = snap.rotations;
                (snap.snapshot, total, Some(rotations))
            }
        }
    }

    /// Counters currently monitored (0 reported for the window path,
    /// where the pair's membership is only defined at merge time).
    pub fn monitored(&self) -> usize {
        match self {
            Backend::Engine(e) => e.monitored(),
            Backend::Window(_) => 0,
        }
    }

    /// Quiesce the backend: apply everything logged but not yet applied.
    /// Call only after all ingest workers have exited.
    pub fn finalize(&self) {
        match self {
            Backend::Engine(e) => e.finalize(),
            Backend::Window(w) => {
                // The window has no finalize; a snapshot drains both
                // engines' pending queues.
                let _ = w.snapshot();
            }
        }
    }
}

/// One batch in flight between a connection and a shard worker.
type Batch = Vec<u64>;

/// The shard fan-in: ring registries, per-shard tallies, shutdown flag.
pub struct ShardPool {
    /// Per-shard inbox of newly connected rings, adopted by the worker.
    registries: Vec<Mutex<Vec<Consumer<Batch>>>>,
    /// Per-shard work counters.
    pub tallies: Vec<ShardTally>,
    /// Ring capacity, in batches, for each (connection, shard) ring.
    queue_batches: usize,
    /// Set to begin draining; workers exit when drained.
    shutdown: AtomicBool,
}

impl ShardPool {
    /// A pool of `shards` shards whose rings hold `queue_batches` batches.
    pub fn new(shards: usize, queue_batches: usize) -> Arc<Self> {
        assert!(shards > 0, "at least one shard");
        Arc::new(Self {
            registries: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            tallies: (0..shards).map(|_| ShardTally::new()).collect(),
            queue_batches,
            shutdown: AtomicBool::new(false),
        })
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.registries.len()
    }

    /// Keys applied across all shards.
    pub fn applied(&self) -> u64 {
        self.tallies.iter().map(|t| t.keys_applied()).sum()
    }

    /// Create the sender for a new connection: one fresh ring per shard,
    /// consumers handed to the workers.
    pub fn connect(self: &Arc<Self>) -> ShardSender {
        let mut producers = Vec::with_capacity(self.shards());
        for registry in &self.registries {
            let (tx, rx) = ring::<Batch>(self.queue_batches);
            registry.lock().push(rx);
            producers.push(tx);
        }
        ShardSender {
            producers,
            scratch: vec![Vec::new(); self.shards()],
        }
    }

    /// Signal workers to finish what is queued and exit.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Whether shutdown has been signalled.
    pub fn is_shutting_down(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Spawn the shard workers over `backend`; with `persist` set, every
    /// drained group is written to the WAL before it is applied.
    pub fn spawn_workers(
        self: &Arc<Self>,
        backend: &Backend,
        persist: Option<Arc<Persistence>>,
    ) -> Vec<JoinHandle<()>> {
        (0..self.shards())
            .map(|shard| {
                let pool = self.clone();
                let backend = backend.clone();
                let persist = persist.clone();
                std::thread::Builder::new()
                    .name(format!("cots-shard-{shard}"))
                    .spawn(move || pool.worker(shard, backend, persist))
                    .expect("spawn shard worker")
            })
            .collect()
    }

    /// The worker loop for one shard: drain up to [`DRAIN_BURST`] batches
    /// across this shard's rings, then log-and-apply them as one group.
    fn worker(&self, shard: usize, backend: Backend, persist: Option<Arc<Persistence>>) {
        let tally = &self.tallies[shard];
        let mut rings: Vec<Consumer<Batch>> = Vec::new();
        let mut burst: Vec<Batch> = Vec::with_capacity(DRAIN_BURST);
        loop {
            // Adopt rings registered since the last pass.
            {
                let mut inbox = self.registries[shard].lock();
                rings.append(&mut inbox);
            }
            rings.retain_mut(|rx| {
                tally.observe_depth(rx.len() as u64);
                loop {
                    if burst.len() >= DRAIN_BURST {
                        return true; // leftovers wait for the next pass
                    }
                    match rx.pop() {
                        Pop::Item(batch) => burst.push(batch),
                        Pop::Empty => return true,
                        Pop::Closed => return false,
                    }
                }
            });
            if !burst.is_empty() {
                match &persist {
                    Some(p) => p.log_and_apply(&mut burst, &backend, tally),
                    None => {
                        for batch in burst.drain(..) {
                            backend.apply(&batch);
                            tally.batch(batch.len() as u64);
                        }
                    }
                }
                continue;
            }
            if self.is_shutting_down() && rings.is_empty() && self.registries[shard].lock().is_empty()
            {
                return; // drained: every connection closed and applied
            }
            tally.idle_park();
            std::thread::sleep(Duration::from_micros(200));
        }
    }
}

/// A connection's handle for feeding the shard queues.
pub struct ShardSender {
    producers: Vec<Producer<Batch>>,
    /// Reused per-shard partition buffers.
    scratch: Vec<Vec<u64>>,
}

/// Outcome of a [`ShardSender::send`].
#[derive(Debug, PartialEq, Eq)]
pub enum SendOutcome {
    /// Every shard accepted its partition.
    Enqueued,
    /// At least one shard ring was full; nothing was enqueued.
    Overloaded,
}

impl ShardSender {
    /// Shard index for a key.
    #[inline]
    pub fn shard_of(key: u64, shards: usize) -> usize {
        (MulHash::hash(&key) % shards as u64) as usize
    }

    /// Partition `keys` by shard and enqueue, all-or-nothing: if any
    /// shard's ring lacks room for its partition the whole batch is
    /// rejected so the client can back off and resend without splitting
    /// or reordering. Sound under concurrency because this connection is
    /// the only producer on its rings: observed free space only grows.
    pub fn send(&mut self, keys: &[u64]) -> SendOutcome {
        let shards = self.producers.len();
        for bucket in &mut self.scratch {
            bucket.clear();
        }
        for &key in keys {
            self.scratch[Self::shard_of(key, shards)].push(key);
        }
        for (shard, bucket) in self.scratch.iter().enumerate() {
            if !bucket.is_empty() && self.producers[shard].free() < 1 {
                return SendOutcome::Overloaded;
            }
        }
        for (shard, bucket) in self.scratch.iter_mut().enumerate() {
            if bucket.is_empty() {
                continue;
            }
            let batch = std::mem::take(bucket);
            self.producers[shard]
                .try_push(batch)
                .expect("free space checked and only we produce");
        }
        SendOutcome::Enqueued
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cots_core::CotsConfig;

    fn engine_backend(capacity: usize) -> Backend {
        Backend::Engine(Arc::new(
            CotsEngine::new(CotsConfig::for_capacity(capacity).unwrap()).unwrap(),
        ))
    }

    #[test]
    fn pipeline_applies_all_keys() {
        let backend = engine_backend(64);
        let pool = ShardPool::new(4, 16);
        let workers = pool.spawn_workers(&backend, None);
        let mut sender = pool.connect();
        let keys: Vec<u64> = (0..10_000u64).map(|i| i % 50).collect();
        let mut sent = 0;
        while sent < keys.len() {
            let end = (sent + 512).min(keys.len());
            match sender.send(&keys[sent..end]) {
                SendOutcome::Enqueued => sent = end,
                SendOutcome::Overloaded => std::thread::yield_now(),
            }
        }
        drop(sender);
        pool.begin_shutdown();
        for w in workers {
            w.join().unwrap();
        }
        backend.finalize();
        assert_eq!(pool.applied(), 10_000);
        assert_eq!(backend.processed(), 10_000);
        let (snap, total, rotations) = backend.capture();
        assert_eq!(total, 10_000);
        assert_eq!(rotations, None);
        let sum: u64 = snap.entries().iter().map(|e| e.count).sum();
        assert_eq!(sum, 10_000, "no key lost in the pipeline");
    }

    #[test]
    fn overload_rejects_all_or_nothing() {
        let pool = ShardPool::new(1, 2);
        // No workers: the single ring (capacity 2) fills and stays full.
        let mut sender = pool.connect();
        assert_eq!(sender.send(&[1, 2, 3]), SendOutcome::Enqueued);
        assert_eq!(sender.send(&[4]), SendOutcome::Enqueued);
        assert_eq!(sender.send(&[5]), SendOutcome::Overloaded);
        assert_eq!(sender.send(&[6]), SendOutcome::Overloaded, "still full");
    }

    #[test]
    fn shard_partition_is_stable() {
        for key in 0..1_000u64 {
            let a = ShardSender::shard_of(key, 4);
            let b = ShardSender::shard_of(key, 4);
            assert_eq!(a, b);
            assert!(a < 4);
        }
    }

    #[test]
    fn window_backend_rotates_and_reports() {
        let w = JumpingWindow::new(CotsConfig::for_capacity(32).unwrap(), 1_000).unwrap();
        let backend = Backend::Window(Arc::new(w));
        let keys: Vec<u64> = (0..2_500u64).map(|i| i % 10).collect();
        backend.apply(&keys);
        let (snap, total, rotations) = backend.capture();
        assert_eq!(total, 2_500);
        assert!(rotations.unwrap() >= 4);
        let sum: u64 = snap.entries().iter().map(|e| e.count).sum();
        assert!(sum <= 1_000, "window bounds the reported mass");
    }
}
