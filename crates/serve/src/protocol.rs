//! The request/response vocabulary of the wire protocol.
//!
//! Payloads are externally-tagged JSON, following the convention of
//! `cots_core::json`: a unit variant serializes as its bare name
//! (`"Stats"`), a data variant as a one-entry object
//! (`{"Ingest": {"keys": [1, 2]}}`). Every query answer carries a
//! [`QueryStamp`] so the client knows which published snapshot epoch it
//! was served from and how many items the backend had applied beyond it.
//!
//! AUDIT: total — decode runs on attacker-controlled payloads; enforced
//! by `cargo xtask audit` (lint-totality).

use cots_core::json::{FromJson, Json, JsonError, JsonResult, ToJson};
use cots_core::{CotsError, CounterEntry, ServiceReport, Snapshot};

/// Decompose an externally-tagged enum value: `"Variant"` or
/// `{"Variant": payload}`.
fn variant(v: &Json) -> JsonResult<(&str, Option<&Json>)> {
    match v {
        Json::Str(name) => Ok((name, None)),
        Json::Obj(members) => match members.as_slice() {
            [(name, payload)] => Ok((name.as_str(), Some(payload))),
            _ => Err(JsonError("expected an enum variant".into())),
        },
        _ => Err(JsonError("expected an enum variant".into())),
    }
}

fn tagged(name: &str, payload: Json) -> Json {
    Json::Obj(vec![(name.to_string(), payload)])
}

/// A query against the live summary.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReq {
    /// Estimated frequency of one key.
    Point {
        /// The key to look up.
        key: u64,
    },
    /// All keys with estimated frequency ≥ `phi` × total (Query 1/3 of
    /// the paper, as a set).
    Frequent {
        /// Support fraction in (0, 1).
        phi: f64,
    },
    /// The `k` heaviest keys.
    TopK {
        /// How many entries to return.
        k: usize,
    },
}

/// One client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Feed a batch of keys into the stream.
    Ingest {
        /// The keys, in stream order.
        keys: Vec<u64>,
    },
    /// Ask a question of the published snapshot.
    Query(QueryReq),
    /// Service statistics (ingest/query counters, staleness, shards).
    Stats,
    /// The full published snapshot.
    Snapshot,
    /// Force an immediate durable checkpoint (requires `--data-dir`).
    Checkpoint,
    /// Begin graceful shutdown: stop accepting, drain queues, exit.
    Shutdown,
}

/// Provenance stamp on every answer: which snapshot it came from and how
/// stale that snapshot was at answer time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStamp {
    /// Publisher epoch of the snapshot the answer was computed from.
    pub epoch: u64,
    /// Backend items applied when the snapshot was captured.
    pub captured_total: u64,
    /// Items applied after capture (staleness bound: the answer may miss
    /// at most this many most-recent items).
    pub staleness: u64,
    /// Window rotation count at capture (`None` on the unwindowed path).
    pub rotations: Option<u64>,
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The ingest batch was accepted into the shard queues (not yet
    /// necessarily applied; see `Stats` for applied counts).
    IngestAck {
        /// Keys enqueued.
        enqueued: u64,
    },
    /// The shard queues are full; the client should back off and resend.
    Overloaded,
    /// Entries answering a [`QueryReq`], heaviest first.
    Answer {
        /// Matching entries (singleton or empty for `Point`).
        entries: Vec<CounterEntry<u64>>,
        /// Stream total the answer was computed against.
        total: u64,
        /// Snapshot provenance.
        stamp: QueryStamp,
    },
    /// Service statistics.
    Stats(ServiceReport),
    /// The full published snapshot.
    Snapshot {
        /// The summary view.
        snapshot: Snapshot<u64>,
        /// Snapshot provenance.
        stamp: QueryStamp,
    },
    /// A durable checkpoint was committed.
    Checkpointed {
        /// WAL sequence watermark the checkpoint cuts at.
        watermark: u64,
        /// Total stream mass the checkpoint accounts for.
        total: u64,
        /// Size of the committed checkpoint file.
        bytes: u64,
    },
    /// Graceful shutdown has begun.
    ShuttingDown,
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl ToJson for QueryReq {
    fn to_json(&self) -> Json {
        match self {
            QueryReq::Point { key } => {
                tagged("Point", Json::obj(vec![("key", key.to_json())]))
            }
            QueryReq::Frequent { phi } => {
                tagged("Frequent", Json::obj(vec![("phi", phi.to_json())]))
            }
            QueryReq::TopK { k } => tagged("TopK", Json::obj(vec![("k", k.to_json())])),
        }
    }
}

impl FromJson for QueryReq {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("Point", Some(p)) => Ok(QueryReq::Point {
                key: u64::from_json(p.field("key")?)?,
            }),
            ("Frequent", Some(p)) => Ok(QueryReq::Frequent {
                phi: f64::from_json(p.field("phi")?)?,
            }),
            ("TopK", Some(p)) => Ok(QueryReq::TopK {
                k: usize::from_json(p.field("k")?)?,
            }),
            (name, _) => Err(JsonError(format!("unknown QueryReq variant `{name}`"))),
        }
    }
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Ingest { keys } => {
                tagged("Ingest", Json::obj(vec![("keys", keys.to_json())]))
            }
            Request::Query(q) => tagged("Query", q.to_json()),
            Request::Stats => Json::Str("Stats".into()),
            Request::Snapshot => Json::Str("Snapshot".into()),
            Request::Checkpoint => Json::Str("Checkpoint".into()),
            Request::Shutdown => Json::Str("Shutdown".into()),
        }
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("Ingest", Some(p)) => Ok(Request::Ingest {
                keys: Vec::<u64>::from_json(p.field("keys")?)?,
            }),
            ("Query", Some(p)) => Ok(Request::Query(QueryReq::from_json(p)?)),
            ("Stats", None) => Ok(Request::Stats),
            ("Snapshot", None) => Ok(Request::Snapshot),
            ("Checkpoint", None) => Ok(Request::Checkpoint),
            ("Shutdown", None) => Ok(Request::Shutdown),
            (name, _) => Err(JsonError(format!("unknown Request variant `{name}`"))),
        }
    }
}

impl ToJson for QueryStamp {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("epoch", self.epoch.to_json()),
            ("captured_total", self.captured_total.to_json()),
            ("staleness", self.staleness.to_json()),
            ("rotations", self.rotations.to_json()),
        ])
    }
}

impl FromJson for QueryStamp {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            epoch: u64::from_json(v.field("epoch")?)?,
            captured_total: u64::from_json(v.field("captured_total")?)?,
            staleness: u64::from_json(v.field("staleness")?)?,
            rotations: Option::<u64>::from_json(v.field("rotations")?)?,
        })
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::IngestAck { enqueued } => {
                tagged("IngestAck", Json::obj(vec![("enqueued", enqueued.to_json())]))
            }
            Response::Overloaded => Json::Str("Overloaded".into()),
            Response::Answer {
                entries,
                total,
                stamp,
            } => tagged(
                "Answer",
                Json::obj(vec![
                    ("entries", entries.to_json()),
                    ("total", total.to_json()),
                    ("stamp", stamp.to_json()),
                ]),
            ),
            Response::Stats(report) => tagged("Stats", report.to_json()),
            Response::Snapshot { snapshot, stamp } => tagged(
                "Snapshot",
                Json::obj(vec![
                    ("snapshot", snapshot.to_json()),
                    ("stamp", stamp.to_json()),
                ]),
            ),
            Response::Checkpointed {
                watermark,
                total,
                bytes,
            } => tagged(
                "Checkpointed",
                Json::obj(vec![
                    ("watermark", watermark.to_json()),
                    ("total", total.to_json()),
                    ("bytes", bytes.to_json()),
                ]),
            ),
            Response::ShuttingDown => Json::Str("ShuttingDown".into()),
            Response::Error { message } => {
                tagged("Error", Json::obj(vec![("message", message.to_json())]))
            }
        }
    }
}

impl FromJson for Response {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("IngestAck", Some(p)) => Ok(Response::IngestAck {
                enqueued: u64::from_json(p.field("enqueued")?)?,
            }),
            ("Overloaded", None) => Ok(Response::Overloaded),
            ("Answer", Some(p)) => Ok(Response::Answer {
                entries: Vec::<CounterEntry<u64>>::from_json(p.field("entries")?)?,
                total: u64::from_json(p.field("total")?)?,
                stamp: QueryStamp::from_json(p.field("stamp")?)?,
            }),
            ("Stats", Some(p)) => Ok(Response::Stats(ServiceReport::from_json(p)?)),
            ("Snapshot", Some(p)) => Ok(Response::Snapshot {
                snapshot: Snapshot::<u64>::from_json(p.field("snapshot")?)?,
                stamp: QueryStamp::from_json(p.field("stamp")?)?,
            }),
            ("Checkpointed", Some(p)) => Ok(Response::Checkpointed {
                watermark: u64::from_json(p.field("watermark")?)?,
                total: u64::from_json(p.field("total")?)?,
                bytes: u64::from_json(p.field("bytes")?)?,
            }),
            ("ShuttingDown", None) => Ok(Response::ShuttingDown),
            ("Error", Some(p)) => Ok(Response::Error {
                message: String::from_json(p.field("message")?)?,
            }),
            (name, _) => Err(JsonError(format!("unknown Response variant `{name}`"))),
        }
    }
}

/// Encode a message for the wire.
pub fn encode<T: ToJson>(msg: &T) -> String {
    cots_core::json::to_string(msg)
}

/// Decode a message from a frame payload, mapping parse failures into
/// [`CotsError::Protocol`].
pub fn decode<T: FromJson>(payload: &str) -> Result<T, CotsError> {
    cots_core::json::from_str(payload).map_err(|e| CotsError::Protocol(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(r: Request) {
        let back: Request = decode(&encode(&r)).unwrap();
        assert_eq!(back, r);
    }

    fn round_trip_response(r: Response) {
        let back: Response = decode(&encode(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Ingest {
            keys: vec![1, 2, 3, u64::MAX],
        });
        round_trip_request(Request::Ingest { keys: vec![] });
        round_trip_request(Request::Query(QueryReq::Point { key: 9 }));
        round_trip_request(Request::Query(QueryReq::Frequent { phi: 0.01 }));
        round_trip_request(Request::Query(QueryReq::TopK { k: 25 }));
        round_trip_request(Request::Stats);
        round_trip_request(Request::Snapshot);
        round_trip_request(Request::Checkpoint);
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn responses_round_trip() {
        let stamp = QueryStamp {
            epoch: 3,
            captured_total: 100,
            staleness: 7,
            rotations: Some(2),
        };
        round_trip_response(Response::IngestAck { enqueued: 4096 });
        round_trip_response(Response::Overloaded);
        round_trip_response(Response::Answer {
            entries: vec![CounterEntry::new(5u64, 10, 1)],
            total: 100,
            stamp,
        });
        round_trip_response(Response::Stats(ServiceReport::default()));
        round_trip_response(Response::Snapshot {
            snapshot: Snapshot::new(vec![CounterEntry::new(1u64, 2, 0)], 2),
            stamp: QueryStamp::default(),
        });
        round_trip_response(Response::Checkpointed {
            watermark: 99,
            total: 1_000,
            bytes: 4_096,
        });
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::Error {
            message: "no".into(),
        });
    }

    #[test]
    fn garbage_decodes_to_protocol_error() {
        for garbage in ["", "{", "42", "\"NoSuchVariant\"", "{\"Ingest\":{}}"] {
            let err = decode::<Request>(garbage).unwrap_err();
            assert!(matches!(err, CotsError::Protocol(_)), "input: {garbage}");
        }
    }
}
