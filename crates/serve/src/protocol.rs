//! The request/response vocabulary of the wire protocol.
//!
//! Payloads are externally-tagged JSON, following the convention of
//! `cots_core::json`: a unit variant serializes as its bare name
//! (`"Stats"`), a data variant as a one-entry object
//! (`{"Ingest": {"keys": [1, 2]}}`). Every query answer carries a
//! [`QueryStamp`] so the client knows which published snapshot epoch it
//! was served from and how many items the backend had applied beyond it.
//!
//! AUDIT: total — decode runs on attacker-controlled payloads; enforced
//! by `cargo xtask audit` (lint-totality).

use cots_core::json::{FromJson, Json, JsonError, JsonResult, ToJson};
use cots_core::{ClusterReport, CotsError, CounterEntry, ServiceReport, Snapshot};

/// The protocol version this build speaks. Version 4 adds no
/// operations: it introduces the negotiated BIN1 binary encoding for
/// the hot-path frames (feature flag `"bin"`, see [`crate::bin1`]).
/// Version 3 introduced the replication operations (`REPL_SUBSCRIBE`,
/// `REPL_BATCH`, `REPL_SNAPSHOT`, `REPL_PROMOTE`); version 2 the
/// mandatory `HELLO` handshake plus the `SNAPSHOT_PAGE` and
/// `CLUSTER_STATS` operations; see the version-compatibility table in
/// `docs/PROTOCOL.md` (machine-checked by `cargo xtask lint-protocol`).
pub const PROTO_VERSION: u32 = 4;

/// The oldest peer version this build still accepts in `HELLO`.
/// Version 1 had no handshake at all, so it cannot be negotiated with:
/// a v1 client's first frame is an operation, which the server answers
/// with `UNSUPPORTED_VERSION` and a close.
pub const MIN_PROTO_VERSION: u32 = 2;

/// Server-side clamp on entries per `SNAPSHOT_PAGE` response. An entry
/// serializes to well under 128 bytes, so a full page stays far below
/// the 16 MiB frame cap no matter what `limit` the client asks for.
pub const MAX_PAGE_ENTRIES: usize = 65_536;

/// Decompose an externally-tagged enum value: `"Variant"` or
/// `{"Variant": payload}`.
fn variant(v: &Json) -> JsonResult<(&str, Option<&Json>)> {
    match v {
        Json::Str(name) => Ok((name, None)),
        Json::Obj(members) => match members.as_slice() {
            [(name, payload)] => Ok((name.as_str(), Some(payload))),
            _ => Err(JsonError("expected an enum variant".into())),
        },
        _ => Err(JsonError("expected an enum variant".into())),
    }
}

fn tagged(name: &str, payload: Json) -> Json {
    Json::Obj(vec![(name.to_string(), payload)])
}

/// A query against the live summary.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryReq {
    /// Estimated frequency of one key.
    Point {
        /// The key to look up.
        key: u64,
    },
    /// All keys with estimated frequency ≥ `phi` × total (Query 1/3 of
    /// the paper, as a set).
    Frequent {
        /// Support fraction in (0, 1).
        phi: f64,
    },
    /// The `k` heaviest keys.
    TopK {
        /// How many entries to return.
        k: usize,
    },
}

/// One client→server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Mandatory first exchange on every connection: the client
    /// announces its protocol version and optional feature flags.
    /// Any other first request is answered with
    /// [`Response::UnsupportedVersion`] and the connection closes.
    Hello {
        /// Protocol version the client speaks (see [`PROTO_VERSION`]).
        proto_version: u32,
        /// Free-form feature flags the client understands.
        features: Vec<String>,
    },
    /// Feed a batch of keys into the stream.
    Ingest {
        /// The keys, in stream order.
        keys: Vec<u64>,
    },
    /// Ask a question of the published snapshot.
    Query(QueryReq),
    /// Service statistics (ingest/query counters, staleness, shards).
    Stats,
    /// The full published snapshot.
    Snapshot,
    /// One page of the published snapshot (delta-aware streaming
    /// transfer: large summaries never approach the 16 MiB frame cap).
    /// `offset == 0` pins the current snapshot to the connection and
    /// compares its epoch against `since_epoch` (an `unchanged` page
    /// short-circuits the transfer); later offsets page through the
    /// pinned snapshot, so a multi-frame transfer is internally
    /// consistent even while new snapshots publish.
    SnapshotPage {
        /// Epoch the requester already holds (0 = none).
        since_epoch: u64,
        /// Entry offset into the snapshot's sorted entry list.
        offset: usize,
        /// Maximum entries wanted (server clamps to
        /// [`MAX_PAGE_ENTRIES`]).
        limit: usize,
    },
    /// Cluster-wide statistics (answered by `cots-coord`; members
    /// answer with an error pointing at the coordinator).
    ClusterStats,
    /// Force an immediate durable checkpoint (requires `--data-dir`).
    Checkpoint,
    /// Begin graceful shutdown: stop accepting, drain queues, exit.
    Shutdown,
    /// Open a replication stream: a primary's WAL shipper announces its
    /// replication lineage, its own next WAL sequence, and the oldest
    /// sequence it can still serve from its log. A standby answers with
    /// [`Response::ReplAck`] naming the next sequence it expects, which
    /// is where the shipper starts (or restarts) the stream. The standby
    /// refuses (with an error) a primary whose lineage is behind its
    /// own, a divergent-lineage primary when the standby already holds
    /// state, or an equal-lineage primary whose `next_seq` is behind the
    /// standby's watermark — all three mean the histories have diverged
    /// and acking would be silent data loss. Non-standby servers refuse
    /// with an error.
    ReplSubscribe {
        /// Oldest WAL sequence the shipper's log still holds.
        start_seq: u64,
        /// The primary's replication lineage (promotion generation,
        /// bumped on every standby → primary promotion).
        lineage: u64,
        /// The primary's own next WAL sequence (its durable watermark).
        next_seq: u64,
    },
    /// A run of replicated WAL batches in sequence order. The standby
    /// logs each batch to its own WAL, applies it, and answers with a
    /// cumulative [`Response::ReplAck`]. Batches at already-applied
    /// sequences are acknowledged but not re-applied (duplicates);
    /// a gap re-acks the current watermark so the shipper rewinds.
    /// A `lineage` that does not match the standby's own is refused
    /// with an error — never acked — so a stale or divergent primary
    /// can't record unseen data as replicated.
    ReplBatch {
        /// The primary's replication lineage (must match the standby's).
        lineage: u64,
        /// The batches, oldest first.
        batches: Vec<ReplFrame>,
    },
    /// Catch-up transfer: a consistent base snapshot of the primary's
    /// summary cut at `watermark`, installed by an *empty* standby in
    /// place of replaying the (already-pruned) WAL prefix. The standby
    /// persists it as its own base checkpoint, adopts the primary's
    /// `lineage`, and acks `watermark`. A non-empty standby refuses
    /// (resync requires an explicit fresh data directory), as does any
    /// standby whose lineage is ahead of the primary's.
    ReplSnapshot {
        /// The primary's replication lineage, adopted on install.
        lineage: u64,
        /// WAL sequence the snapshot accounts for (exclusive upper
        /// bound: the stream resumes at `watermark`).
        watermark: u64,
        /// The merged summary at the cut.
        snapshot: Snapshot<u64>,
    },
    /// Coordinator order: stop being a standby, accept ingest, and
    /// start publishing. Idempotent — promoting a primary is a no-op
    /// acknowledged with its current watermark.
    ReplPromote,
}

/// One replicated WAL batch on the wire: the primary's log sequence
/// number and the keys the batch applied, in stream order. Mirrors
/// `cots_persist::WalBatch` but lives in the protocol vocabulary so the
/// wire format is self-contained.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplFrame {
    /// The primary's WAL sequence number for this batch.
    pub seq: u64,
    /// The keys the batch carries, in stream order.
    pub keys: Vec<u64>,
}

impl ToJson for ReplFrame {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("seq", self.seq.to_json()),
            ("keys", self.keys.to_json()),
        ])
    }
}

impl FromJson for ReplFrame {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            seq: u64::from_json(v.field("seq")?)?,
            keys: Vec::<u64>::from_json(v.field("keys")?)?,
        })
    }
}

/// Provenance stamp on every answer: which snapshot it came from and how
/// stale that snapshot was at answer time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct QueryStamp {
    /// Publisher epoch of the snapshot the answer was computed from.
    pub epoch: u64,
    /// Backend items applied when the snapshot was captured.
    pub captured_total: u64,
    /// Items applied after capture (staleness bound: the answer may miss
    /// at most this many most-recent items).
    pub staleness: u64,
    /// Window rotation count at capture (`None` on the unwindowed path).
    pub rotations: Option<u64>,
}

/// One server→client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// The handshake succeeded; the connection may proceed.
    HelloAck {
        /// Protocol version the server speaks.
        proto_version: u32,
        /// Feature flags the server supports.
        features: Vec<String>,
    },
    /// The handshake failed: the client's version is outside the
    /// server's supported range, or the first frame was not `HELLO` at
    /// all (`requested` is 0 in that case). The connection closes after
    /// this response.
    UnsupportedVersion {
        /// Newest protocol version the server speaks.
        supported: u32,
        /// Version the client announced (0 = no `HELLO` was sent).
        requested: u32,
    },
    /// The ingest batch was accepted into the shard queues (not yet
    /// necessarily applied; see `Stats` for applied counts).
    IngestAck {
        /// Keys enqueued.
        enqueued: u64,
    },
    /// The shard queues are full; the client should back off and resend.
    Overloaded,
    /// Entries answering a [`QueryReq`], heaviest first.
    Answer {
        /// Matching entries (singleton or empty for `Point`).
        entries: Vec<CounterEntry<u64>>,
        /// Stream total the answer was computed against.
        total: u64,
        /// Snapshot provenance.
        stamp: QueryStamp,
    },
    /// Service statistics.
    Stats(ServiceReport),
    /// The full published snapshot.
    Snapshot {
        /// The summary view.
        snapshot: Snapshot<u64>,
        /// Snapshot provenance.
        stamp: QueryStamp,
    },
    /// One page of the pinned snapshot (see [`Request::SnapshotPage`]).
    SnapshotPage {
        /// Entries `offset..offset+len` of the sorted entry list
        /// (empty when `unchanged`).
        entries: Vec<CounterEntry<u64>>,
        /// Offset this page actually starts at.
        offset: usize,
        /// Total entries in the pinned snapshot.
        total_entries: usize,
        /// Total stream mass the pinned snapshot accounts for.
        total: u64,
        /// No entries remain after this page.
        done: bool,
        /// The requester's `since_epoch` is still current: the transfer
        /// is a no-op and no entries were shipped.
        unchanged: bool,
        /// Provenance of the pinned snapshot.
        stamp: QueryStamp,
    },
    /// Cluster-wide statistics from a coordinator.
    ClusterStats(ClusterReport),
    /// A durable checkpoint was committed.
    Checkpointed {
        /// WAL sequence watermark the checkpoint cuts at.
        watermark: u64,
        /// Total stream mass the checkpoint accounts for.
        total: u64,
        /// Size of the committed checkpoint file.
        bytes: u64,
    },
    /// Graceful shutdown has begun.
    ShuttingDown,
    /// Cumulative replication acknowledgement: everything below
    /// `ack_seq` is durable in the standby's own WAL. Answers
    /// `REPL_SUBSCRIBE`, `REPL_BATCH`, `REPL_SNAPSHOT`, and
    /// `REPL_PROMOTE`.
    ReplAck {
        /// Next WAL sequence the standby expects (= durable watermark).
        ack_seq: u64,
    },
    /// The request could not be served.
    Error {
        /// Human-readable reason.
        message: String,
    },
}

impl ToJson for QueryReq {
    fn to_json(&self) -> Json {
        match self {
            QueryReq::Point { key } => {
                tagged("Point", Json::obj(vec![("key", key.to_json())]))
            }
            QueryReq::Frequent { phi } => {
                tagged("Frequent", Json::obj(vec![("phi", phi.to_json())]))
            }
            QueryReq::TopK { k } => tagged("TopK", Json::obj(vec![("k", k.to_json())])),
        }
    }
}

impl FromJson for QueryReq {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("Point", Some(p)) => Ok(QueryReq::Point {
                key: u64::from_json(p.field("key")?)?,
            }),
            ("Frequent", Some(p)) => Ok(QueryReq::Frequent {
                phi: f64::from_json(p.field("phi")?)?,
            }),
            ("TopK", Some(p)) => Ok(QueryReq::TopK {
                k: usize::from_json(p.field("k")?)?,
            }),
            (name, _) => Err(JsonError(format!("unknown QueryReq variant `{name}`"))),
        }
    }
}

impl ToJson for Request {
    fn to_json(&self) -> Json {
        match self {
            Request::Hello {
                proto_version,
                features,
            } => tagged(
                "Hello",
                Json::obj(vec![
                    ("proto_version", proto_version.to_json()),
                    ("features", features.to_json()),
                ]),
            ),
            Request::Ingest { keys } => {
                tagged("Ingest", Json::obj(vec![("keys", keys.to_json())]))
            }
            Request::Query(q) => tagged("Query", q.to_json()),
            Request::Stats => Json::Str("Stats".into()),
            Request::Snapshot => Json::Str("Snapshot".into()),
            Request::SnapshotPage {
                since_epoch,
                offset,
                limit,
            } => tagged(
                "SnapshotPage",
                Json::obj(vec![
                    ("since_epoch", since_epoch.to_json()),
                    ("offset", offset.to_json()),
                    ("limit", limit.to_json()),
                ]),
            ),
            Request::ClusterStats => Json::Str("ClusterStats".into()),
            Request::Checkpoint => Json::Str("Checkpoint".into()),
            Request::Shutdown => Json::Str("Shutdown".into()),
            Request::ReplSubscribe {
                start_seq,
                lineage,
                next_seq,
            } => tagged(
                "ReplSubscribe",
                Json::obj(vec![
                    ("start_seq", start_seq.to_json()),
                    ("lineage", lineage.to_json()),
                    ("next_seq", next_seq.to_json()),
                ]),
            ),
            Request::ReplBatch { lineage, batches } => tagged(
                "ReplBatch",
                Json::obj(vec![
                    ("lineage", lineage.to_json()),
                    ("batches", batches.to_json()),
                ]),
            ),
            Request::ReplSnapshot {
                lineage,
                watermark,
                snapshot,
            } => tagged(
                "ReplSnapshot",
                Json::obj(vec![
                    ("lineage", lineage.to_json()),
                    ("watermark", watermark.to_json()),
                    ("snapshot", snapshot.to_json()),
                ]),
            ),
            Request::ReplPromote => Json::Str("ReplPromote".into()),
        }
    }
}

impl FromJson for Request {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("Hello", Some(p)) => Ok(Request::Hello {
                proto_version: u32::from_json(p.field("proto_version")?)?,
                features: Vec::<String>::from_json(p.field("features")?)?,
            }),
            ("Ingest", Some(p)) => Ok(Request::Ingest {
                keys: Vec::<u64>::from_json(p.field("keys")?)?,
            }),
            ("Query", Some(p)) => Ok(Request::Query(QueryReq::from_json(p)?)),
            ("Stats", None) => Ok(Request::Stats),
            ("Snapshot", None) => Ok(Request::Snapshot),
            ("SnapshotPage", Some(p)) => Ok(Request::SnapshotPage {
                since_epoch: u64::from_json(p.field("since_epoch")?)?,
                offset: usize::from_json(p.field("offset")?)?,
                limit: usize::from_json(p.field("limit")?)?,
            }),
            ("ClusterStats", None) => Ok(Request::ClusterStats),
            ("Checkpoint", None) => Ok(Request::Checkpoint),
            ("Shutdown", None) => Ok(Request::Shutdown),
            ("ReplSubscribe", Some(p)) => Ok(Request::ReplSubscribe {
                start_seq: u64::from_json(p.field("start_seq")?)?,
                lineage: u64::from_json(p.field("lineage")?)?,
                next_seq: u64::from_json(p.field("next_seq")?)?,
            }),
            ("ReplBatch", Some(p)) => Ok(Request::ReplBatch {
                lineage: u64::from_json(p.field("lineage")?)?,
                batches: Vec::<ReplFrame>::from_json(p.field("batches")?)?,
            }),
            ("ReplSnapshot", Some(p)) => Ok(Request::ReplSnapshot {
                lineage: u64::from_json(p.field("lineage")?)?,
                watermark: u64::from_json(p.field("watermark")?)?,
                snapshot: Snapshot::<u64>::from_json(p.field("snapshot")?)?,
            }),
            ("ReplPromote", None) => Ok(Request::ReplPromote),
            (name, _) => Err(JsonError(format!("unknown Request variant `{name}`"))),
        }
    }
}

impl ToJson for QueryStamp {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("epoch", self.epoch.to_json()),
            ("captured_total", self.captured_total.to_json()),
            ("staleness", self.staleness.to_json()),
            ("rotations", self.rotations.to_json()),
        ])
    }
}

impl FromJson for QueryStamp {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            epoch: u64::from_json(v.field("epoch")?)?,
            captured_total: u64::from_json(v.field("captured_total")?)?,
            staleness: u64::from_json(v.field("staleness")?)?,
            rotations: Option::<u64>::from_json(v.field("rotations")?)?,
        })
    }
}

impl ToJson for Response {
    fn to_json(&self) -> Json {
        match self {
            Response::HelloAck {
                proto_version,
                features,
            } => tagged(
                "HelloAck",
                Json::obj(vec![
                    ("proto_version", proto_version.to_json()),
                    ("features", features.to_json()),
                ]),
            ),
            Response::UnsupportedVersion {
                supported,
                requested,
            } => tagged(
                "UnsupportedVersion",
                Json::obj(vec![
                    ("supported", supported.to_json()),
                    ("requested", requested.to_json()),
                ]),
            ),
            Response::IngestAck { enqueued } => {
                tagged("IngestAck", Json::obj(vec![("enqueued", enqueued.to_json())]))
            }
            Response::Overloaded => Json::Str("Overloaded".into()),
            Response::Answer {
                entries,
                total,
                stamp,
            } => tagged(
                "Answer",
                Json::obj(vec![
                    ("entries", entries.to_json()),
                    ("total", total.to_json()),
                    ("stamp", stamp.to_json()),
                ]),
            ),
            Response::Stats(report) => tagged("Stats", report.to_json()),
            Response::Snapshot { snapshot, stamp } => tagged(
                "Snapshot",
                Json::obj(vec![
                    ("snapshot", snapshot.to_json()),
                    ("stamp", stamp.to_json()),
                ]),
            ),
            Response::SnapshotPage {
                entries,
                offset,
                total_entries,
                total,
                done,
                unchanged,
                stamp,
            } => tagged(
                "SnapshotPage",
                Json::obj(vec![
                    ("entries", entries.to_json()),
                    ("offset", offset.to_json()),
                    ("total_entries", total_entries.to_json()),
                    ("total", total.to_json()),
                    ("done", done.to_json()),
                    ("unchanged", unchanged.to_json()),
                    ("stamp", stamp.to_json()),
                ]),
            ),
            Response::ClusterStats(report) => tagged("ClusterStats", report.to_json()),
            Response::Checkpointed {
                watermark,
                total,
                bytes,
            } => tagged(
                "Checkpointed",
                Json::obj(vec![
                    ("watermark", watermark.to_json()),
                    ("total", total.to_json()),
                    ("bytes", bytes.to_json()),
                ]),
            ),
            Response::ShuttingDown => Json::Str("ShuttingDown".into()),
            Response::ReplAck { ack_seq } => {
                tagged("ReplAck", Json::obj(vec![("ack_seq", ack_seq.to_json())]))
            }
            Response::Error { message } => {
                tagged("Error", Json::obj(vec![("message", message.to_json())]))
            }
        }
    }
}

impl FromJson for Response {
    fn from_json(v: &Json) -> JsonResult<Self> {
        match variant(v)? {
            ("HelloAck", Some(p)) => Ok(Response::HelloAck {
                proto_version: u32::from_json(p.field("proto_version")?)?,
                features: Vec::<String>::from_json(p.field("features")?)?,
            }),
            ("UnsupportedVersion", Some(p)) => Ok(Response::UnsupportedVersion {
                supported: u32::from_json(p.field("supported")?)?,
                requested: u32::from_json(p.field("requested")?)?,
            }),
            ("IngestAck", Some(p)) => Ok(Response::IngestAck {
                enqueued: u64::from_json(p.field("enqueued")?)?,
            }),
            ("Overloaded", None) => Ok(Response::Overloaded),
            ("Answer", Some(p)) => Ok(Response::Answer {
                entries: Vec::<CounterEntry<u64>>::from_json(p.field("entries")?)?,
                total: u64::from_json(p.field("total")?)?,
                stamp: QueryStamp::from_json(p.field("stamp")?)?,
            }),
            ("Stats", Some(p)) => Ok(Response::Stats(ServiceReport::from_json(p)?)),
            ("Snapshot", Some(p)) => Ok(Response::Snapshot {
                snapshot: Snapshot::<u64>::from_json(p.field("snapshot")?)?,
                stamp: QueryStamp::from_json(p.field("stamp")?)?,
            }),
            ("SnapshotPage", Some(p)) => Ok(Response::SnapshotPage {
                entries: Vec::<CounterEntry<u64>>::from_json(p.field("entries")?)?,
                offset: usize::from_json(p.field("offset")?)?,
                total_entries: usize::from_json(p.field("total_entries")?)?,
                total: u64::from_json(p.field("total")?)?,
                done: bool::from_json(p.field("done")?)?,
                unchanged: bool::from_json(p.field("unchanged")?)?,
                stamp: QueryStamp::from_json(p.field("stamp")?)?,
            }),
            ("ClusterStats", Some(p)) => Ok(Response::ClusterStats(ClusterReport::from_json(p)?)),
            ("Checkpointed", Some(p)) => Ok(Response::Checkpointed {
                watermark: u64::from_json(p.field("watermark")?)?,
                total: u64::from_json(p.field("total")?)?,
                bytes: u64::from_json(p.field("bytes")?)?,
            }),
            ("ShuttingDown", None) => Ok(Response::ShuttingDown),
            ("ReplAck", Some(p)) => Ok(Response::ReplAck {
                ack_seq: u64::from_json(p.field("ack_seq")?)?,
            }),
            ("Error", Some(p)) => Ok(Response::Error {
                message: String::from_json(p.field("message")?)?,
            }),
            (name, _) => Err(JsonError(format!("unknown Response variant `{name}`"))),
        }
    }
}

/// Build the `SNAPSHOT_PAGE` response for one page of a pinned
/// snapshot. Pure slicing over the sorted entry list: the caller pins
/// the snapshot per connection (at `offset == 0`) and recomputes the
/// stamp; this function never allocates more than one clamped page.
pub fn snapshot_page_response(
    snapshot: &Snapshot<u64>,
    stamp: QueryStamp,
    since_epoch: u64,
    offset: usize,
    limit: usize,
) -> Response {
    let total_entries = snapshot.len();
    if offset == 0 && since_epoch != 0 && since_epoch == stamp.epoch {
        return Response::SnapshotPage {
            entries: Vec::new(),
            offset: 0,
            total_entries,
            total: snapshot.total(),
            done: true,
            unchanged: true,
            stamp,
        };
    }
    let limit = limit.clamp(1, MAX_PAGE_ENTRIES);
    let start = offset.min(total_entries);
    let end = start.saturating_add(limit).min(total_entries);
    let entries = snapshot.entries().get(start..end).unwrap_or(&[]).to_vec();
    Response::SnapshotPage {
        entries,
        offset: start,
        total_entries,
        total: snapshot.total(),
        done: end >= total_entries,
        unchanged: false,
        stamp,
    }
}

/// Encode a message for the wire.
pub fn encode<T: ToJson>(msg: &T) -> String {
    cots_core::json::to_string(msg)
}

/// Decode a message from a frame payload, mapping parse failures into
/// [`CotsError::Protocol`].
pub fn decode<T: FromJson>(payload: &str) -> Result<T, CotsError> {
    cots_core::json::from_str(payload).map_err(|e| CotsError::Protocol(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(r: Request) {
        let back: Request = decode(&encode(&r)).unwrap();
        assert_eq!(back, r);
    }

    fn round_trip_response(r: Response) {
        let back: Response = decode(&encode(&r)).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(Request::Hello {
            proto_version: PROTO_VERSION,
            features: vec!["snapshot-page".into()],
        });
        round_trip_request(Request::Hello {
            proto_version: 1,
            features: vec![],
        });
        round_trip_request(Request::Ingest {
            keys: vec![1, 2, 3, u64::MAX],
        });
        round_trip_request(Request::Ingest { keys: vec![] });
        round_trip_request(Request::Query(QueryReq::Point { key: 9 }));
        round_trip_request(Request::Query(QueryReq::Frequent { phi: 0.01 }));
        round_trip_request(Request::Query(QueryReq::TopK { k: 25 }));
        round_trip_request(Request::Stats);
        round_trip_request(Request::Snapshot);
        round_trip_request(Request::SnapshotPage {
            since_epoch: 41,
            offset: 65_536,
            limit: 4_096,
        });
        round_trip_request(Request::ClusterStats);
        round_trip_request(Request::Checkpoint);
        round_trip_request(Request::Shutdown);
        round_trip_request(Request::ReplSubscribe {
            start_seq: 17,
            lineage: 2,
            next_seq: 40,
        });
        round_trip_request(Request::ReplBatch {
            lineage: 2,
            batches: vec![
                ReplFrame {
                    seq: 17,
                    keys: vec![1, 2, u64::MAX],
                },
                ReplFrame {
                    seq: 18,
                    keys: vec![],
                },
            ],
        });
        round_trip_request(Request::ReplBatch {
            lineage: 0,
            batches: vec![],
        });
        round_trip_request(Request::ReplSnapshot {
            lineage: u64::MAX,
            watermark: 42,
            snapshot: Snapshot::new(vec![CounterEntry::new(7u64, 9, 2)], 11),
        });
        round_trip_request(Request::ReplPromote);
    }

    #[test]
    fn responses_round_trip() {
        let stamp = QueryStamp {
            epoch: 3,
            captured_total: 100,
            staleness: 7,
            rotations: Some(2),
        };
        round_trip_response(Response::HelloAck {
            proto_version: PROTO_VERSION,
            features: vec!["snapshot-page".into(), "cluster".into()],
        });
        round_trip_response(Response::UnsupportedVersion {
            supported: PROTO_VERSION,
            requested: 0,
        });
        round_trip_response(Response::IngestAck { enqueued: 4096 });
        round_trip_response(Response::Overloaded);
        round_trip_response(Response::Answer {
            entries: vec![CounterEntry::new(5u64, 10, 1)],
            total: 100,
            stamp,
        });
        round_trip_response(Response::Stats(ServiceReport::default()));
        round_trip_response(Response::Snapshot {
            snapshot: Snapshot::new(vec![CounterEntry::new(1u64, 2, 0)], 2),
            stamp: QueryStamp::default(),
        });
        round_trip_response(Response::SnapshotPage {
            entries: vec![CounterEntry::new(5u64, 10, 1)],
            offset: 128,
            total_entries: 129,
            total: 500,
            done: true,
            unchanged: false,
            stamp,
        });
        round_trip_response(Response::ClusterStats(ClusterReport::default()));
        round_trip_response(Response::Checkpointed {
            watermark: 99,
            total: 1_000,
            bytes: 4_096,
        });
        round_trip_response(Response::ShuttingDown);
        round_trip_response(Response::ReplAck { ack_seq: 99 });
        round_trip_response(Response::Error {
            message: "no".into(),
        });
    }

    fn page(
        resp: Response,
    ) -> (Vec<CounterEntry<u64>>, usize, usize, u64, bool, bool) {
        match resp {
            Response::SnapshotPage {
                entries,
                offset,
                total_entries,
                total,
                done,
                unchanged,
                ..
            } => (entries, offset, total_entries, total, done, unchanged),
            other => panic!("expected SnapshotPage, got {other:?}"),
        }
    }

    #[test]
    fn snapshot_pages_cover_the_summary_exactly() {
        let entries: Vec<CounterEntry<u64>> = (0..10u64)
            .map(|i| CounterEntry::new(i, 100 - i, 1))
            .collect();
        let snap = Snapshot::new(entries.clone(), 955);
        let stamp = QueryStamp {
            epoch: 7,
            ..QueryStamp::default()
        };

        // Paging in chunks of 4 reassembles the exact entry list.
        let mut got = Vec::new();
        let mut offset = 0;
        loop {
            let (page_entries, off, total_entries, total, done, unchanged) =
                page(snapshot_page_response(&snap, stamp, 0, offset, 4));
            assert_eq!(off, offset);
            assert_eq!(total_entries, 10);
            assert_eq!(total, 955);
            assert!(!unchanged);
            got.extend(page_entries);
            offset = got.len();
            if done {
                break;
            }
        }
        assert_eq!(got, entries);

        // A requester already holding the current epoch short-circuits.
        let (e, _, _, _, done, unchanged) =
            page(snapshot_page_response(&snap, stamp, 7, 0, 4));
        assert!(unchanged && done && e.is_empty());
        // ...but only at offset 0 (mid-transfer pages always ship).
        let (e, _, _, _, _, unchanged) =
            page(snapshot_page_response(&snap, stamp, 7, 8, 4));
        assert!(!unchanged);
        assert_eq!(e.len(), 2);

        // Out-of-range offsets and degenerate limits are total.
        let (e, off, _, _, done, _) =
            page(snapshot_page_response(&snap, stamp, 0, 10_000, 0));
        assert!(e.is_empty() && done);
        assert_eq!(off, 10);
        let (e, _, _, _, _, _) = page(snapshot_page_response(
            &snap,
            stamp,
            0,
            0,
            usize::MAX,
        ));
        assert_eq!(e.len(), 10);
    }

    #[test]
    fn garbage_decodes_to_protocol_error() {
        for garbage in ["", "{", "42", "\"NoSuchVariant\"", "{\"Ingest\":{}}"] {
            let err = decode::<Request>(garbage).unwrap_err();
            assert!(matches!(err, CotsError::Protocol(_)), "input: {garbage}");
        }
    }
}
