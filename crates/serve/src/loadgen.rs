//! The load generator behind `cots-load` and the service benchmark:
//! replays a deterministic Zipf stream over the wire, optionally fires
//! concurrent queries, and checks answers against exact ground truth.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cots_core::json::{FromJson, Json, JsonResult, ToJson};
use cots_core::{CotsError, Result, Threshold};
use cots_datagen::{ExactCounter, StreamSpec};

use crate::client::Client;
use crate::protocol::{QueryReq, Response};

/// Which wire encoding the bulk `INGEST` path should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WireMode {
    /// BIN1 when the server advertises `"bin"`, JSON otherwise.
    #[default]
    Auto,
    /// Force JSON even on a binary-capable server.
    Json,
    /// Require BIN1; error out if the server does not advertise it.
    Binary,
}

impl std::str::FromStr for WireMode {
    type Err = String;

    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s {
            "auto" => Ok(Self::Auto),
            "json" => Ok(Self::Json),
            "binary" => Ok(Self::Binary),
            other => Err(format!("unknown wire mode `{other}`")),
        }
    }
}

/// What to replay and how hard.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:4040`.
    pub addr: String,
    /// Stream length.
    pub items: u64,
    /// Distinct-key alphabet size.
    pub alphabet: usize,
    /// Zipf skew.
    pub alpha: f64,
    /// Stream seed (byte-for-byte reproducible).
    pub seed: u64,
    /// Skip this many leading items of the seeded stream and replay the
    /// next `items` after them. A crashed-and-recovered server can be
    /// driven forward deterministically: re-run with the same seed and
    /// `resume_from` = items already delivered, and the generator sends
    /// exactly the unsent suffix.
    pub resume_from: u64,
    /// Keys per `INGEST` frame.
    pub batch: usize,
    /// Parallel ingest connections.
    pub connections: usize,
    /// Background `frequent(phi)` queries per second (0 = none).
    pub qps: u64,
    /// Support fraction for queries and `--check`.
    pub phi: f64,
    /// Verify answers against exact ground truth after quiescence.
    pub check: bool,
    /// Wire encoding for the `INGEST` frames (see [`WireMode`]).
    pub wire: WireMode,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4040".into(),
            items: 1_000_000,
            alphabet: 100_000,
            alpha: 1.5,
            seed: 42,
            resume_from: 0,
            batch: 8_192,
            connections: 2,
            qps: 0,
            phi: 0.01,
            check: false,
            wire: WireMode::Auto,
        }
    }
}

/// Result of the answer check against exact truth.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Support fraction checked.
    pub phi: f64,
    /// Resolved count threshold (`ceil(phi × items)`).
    pub threshold: u64,
    /// Keys whose true count meets the threshold.
    pub truly_frequent: usize,
    /// Entries the server reported for `frequent(phi)`.
    pub reported: usize,
    /// Truly frequent keys missing from the answer (must be 0: Space
    /// Saving guarantees recall 1.0 at quiescence).
    pub missed: usize,
    /// Reported entries violating `count ≥ true ≥ count − error`.
    pub bound_violations: usize,
    /// All of the above held.
    pub passed: bool,
}

/// Ingest-frame round-trip latency over one load run, aggregated from
/// per-connection samples (one sample per `INGEST` frame: send to ack,
/// retries included).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Round trips measured.
    pub samples: u64,
    /// Median round trip, microseconds.
    pub p50_us: u64,
    /// 99th-percentile round trip, microseconds.
    pub p99_us: u64,
    /// Slowest round trip, microseconds.
    pub max_us: u64,
    /// Largest per-connection p99 — a fairness signal: when one
    /// connection's tail is far above the pooled p99, the front-end is
    /// starving it.
    pub worst_connection_p99_us: u64,
}

/// Per-frame wire-codec cost over one load run: what the client spent
/// turning key batches into bytes and acks back into responses, split
/// out from the round trip so encode cost is visible independently of
/// server latency.
#[derive(Debug, Clone, PartialEq)]
pub struct WireSummary {
    /// Effective encoding: `"binary"` (BIN1) or `"json"`.
    pub mode: String,
    /// `INGEST` frames encoded (one per batch; retries resend, not
    /// re-encode).
    pub frames: u64,
    /// Median per-frame encode time, nanoseconds.
    pub encode_p50_ns: u64,
    /// 99th-percentile per-frame encode time, nanoseconds.
    pub encode_p99_ns: u64,
    /// Median per-ack decode time, nanoseconds.
    pub decode_p50_ns: u64,
    /// 99th-percentile per-ack decode time, nanoseconds.
    pub decode_p99_ns: u64,
}

/// Everything one load run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Items streamed.
    pub items: u64,
    /// Wall-clock seconds from first frame to all items applied.
    pub elapsed_secs: f64,
    /// Million items per second over the wire path.
    pub meps: f64,
    /// `OVERLOADED` responses absorbed by retry (backpressure working).
    pub overload_retries: u64,
    /// Background queries answered during ingest.
    pub queries_issued: u64,
    /// Ingest round-trip latency (absent only for zero-frame runs).
    pub latency: Option<LatencySummary>,
    /// Per-frame encode/decode cost (absent only for zero-frame runs).
    pub wire: Option<WireSummary>,
    /// Answer verification, when requested.
    pub check: Option<CheckReport>,
}

impl ToJson for CheckReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("phi", self.phi.to_json()),
            ("threshold", self.threshold.to_json()),
            ("truly_frequent", self.truly_frequent.to_json()),
            ("reported", self.reported.to_json()),
            ("missed", self.missed.to_json()),
            ("bound_violations", self.bound_violations.to_json()),
            ("passed", self.passed.to_json()),
        ])
    }
}

impl FromJson for CheckReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            phi: f64::from_json(v.field("phi")?)?,
            threshold: u64::from_json(v.field("threshold")?)?,
            truly_frequent: usize::from_json(v.field("truly_frequent")?)?,
            reported: usize::from_json(v.field("reported")?)?,
            missed: usize::from_json(v.field("missed")?)?,
            bound_violations: usize::from_json(v.field("bound_violations")?)?,
            passed: bool::from_json(v.field("passed")?)?,
        })
    }
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("samples", self.samples.to_json()),
            ("p50_us", self.p50_us.to_json()),
            ("p99_us", self.p99_us.to_json()),
            ("max_us", self.max_us.to_json()),
            (
                "worst_connection_p99_us",
                self.worst_connection_p99_us.to_json(),
            ),
        ])
    }
}

impl FromJson for LatencySummary {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            samples: u64::from_json(v.field("samples")?)?,
            p50_us: u64::from_json(v.field("p50_us")?)?,
            p99_us: u64::from_json(v.field("p99_us")?)?,
            max_us: u64::from_json(v.field("max_us")?)?,
            worst_connection_p99_us: u64::from_json(v.field("worst_connection_p99_us")?)?,
        })
    }
}

impl ToJson for WireSummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("mode", self.mode.to_json()),
            ("frames", self.frames.to_json()),
            ("encode_p50_ns", self.encode_p50_ns.to_json()),
            ("encode_p99_ns", self.encode_p99_ns.to_json()),
            ("decode_p50_ns", self.decode_p50_ns.to_json()),
            ("decode_p99_ns", self.decode_p99_ns.to_json()),
        ])
    }
}

impl FromJson for WireSummary {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            mode: String::from_json(v.field("mode")?)?,
            frames: u64::from_json(v.field("frames")?)?,
            encode_p50_ns: u64::from_json(v.field("encode_p50_ns")?)?,
            encode_p99_ns: u64::from_json(v.field("encode_p99_ns")?)?,
            decode_p50_ns: u64::from_json(v.field("decode_p50_ns")?)?,
            decode_p99_ns: u64::from_json(v.field("decode_p99_ns")?)?,
        })
    }
}

impl ToJson for LoadReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("items", self.items.to_json()),
            ("elapsed_secs", self.elapsed_secs.to_json()),
            ("meps", self.meps.to_json()),
            ("overload_retries", self.overload_retries.to_json()),
            ("queries_issued", self.queries_issued.to_json()),
            ("latency", self.latency.to_json()),
            ("wire", self.wire.to_json()),
            ("check", self.check.to_json()),
        ])
    }
}

impl FromJson for LoadReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            items: u64::from_json(v.field("items")?)?,
            elapsed_secs: f64::from_json(v.field("elapsed_secs")?)?,
            meps: f64::from_json(v.field("meps")?)?,
            overload_retries: u64::from_json(v.field("overload_retries")?)?,
            queries_issued: u64::from_json(v.field("queries_issued")?)?,
            latency: Option::<LatencySummary>::from_json(v.field("latency")?)?,
            wire: Option::<WireSummary>::from_json(v.field("wire")?)?,
            check: Option::<CheckReport>::from_json(v.field("check")?)?,
        })
    }
}

/// Replay the configured stream against the server and report.
///
/// Drives `connections` persistent ingest connections; the stream's
/// `INGEST` batches are dealt round-robin across them (connection `c`
/// sends batches `c, c+connections, c+2·connections, …`), so every
/// connection stays busy for the whole run even when there are fewer
/// batches than a contiguous split would have produced per connection.
/// With `qps > 0` one extra query connection fires `frequent(phi)` at
/// the requested rate. Returns once every item is *applied* (not merely
/// acked) and, if `check` is set, after verifying the frequent-set
/// answer against exact truth.
pub fn run(config: &LoadConfig) -> Result<LoadReport> {
    if config.items == 0 || config.batch == 0 || config.connections == 0 {
        return Err(CotsError::InvalidRun(
            "items, batch and connections must be positive".into(),
        ));
    }
    if config.check && config.resume_from > 0 {
        return Err(CotsError::InvalidRun(
            "--check needs the full stream; it cannot be combined with --resume \
             (the server holds recovered state the checker did not generate)"
                .into(),
        ));
    }
    // Deterministic resume: materialize the prefix too, then drop it, so
    // the suffix is byte-for-byte what a full run would have sent next.
    let full = StreamSpec::zipf(
        (config.resume_from + config.items) as usize,
        config.alphabet,
        config.alpha,
        config.seed,
    )
    .generate();
    let stream = &full[config.resume_from as usize..];

    let start = Instant::now();
    let ingest_done = Arc::new(AtomicBool::new(false));
    let retries = AtomicU64::new(0);
    let queries = AtomicU64::new(0);

    let batches: Vec<&[u64]> = stream.chunks(config.batch).collect();
    let per_conn: Vec<ConnSamples> = std::thread::scope(|s| -> Result<Vec<ConnSamples>> {
        let batches = &batches;
        let mut handles = Vec::new();
        for c in 0..config.connections {
            let retries = &retries;
            handles.push(s.spawn(move || -> Result<ConnSamples> {
                let mut client = Client::connect(&config.addr)?;
                apply_wire(&mut client, config.wire)?;
                let mut samples = ConnSamples {
                    binary: client.is_binary(),
                    ..ConnSamples::default()
                };
                for batch in batches.iter().skip(c).step_by(config.connections) {
                    let sent = Instant::now();
                    let (r, enc_ns, dec_ns) = timed_ingest(&mut client, batch)?;
                    samples.rtts.push(sent.elapsed().as_micros() as u64);
                    samples.enc_ns.push(enc_ns);
                    samples.dec_ns.push(dec_ns);
                    retries.fetch_add(r, Ordering::Relaxed);
                }
                Ok(samples)
            }));
        }
        let query_handle = (config.qps > 0).then(|| {
            let ingest_done = ingest_done.clone();
            let queries = &queries;
            let gap = Duration::from_nanos(1_000_000_000 / config.qps);
            s.spawn(move || -> Result<()> {
                let mut client = Client::connect(&config.addr)?;
                while !ingest_done.load(Ordering::Acquire) {
                    client.query(QueryReq::Frequent { phi: config.phi })?;
                    queries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(gap);
                }
                Ok(())
            })
        });
        let mut first_err = None;
        let mut lats = Vec::new();
        for h in handles {
            match h.join().expect("ingest thread panicked") {
                Ok(samples) => lats.push(samples),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        ingest_done.store(true, Ordering::Release);
        if let Some(h) = query_handle {
            if let Err(e) = h.join().expect("query thread panicked") {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(lats),
        }
    })?;

    // Acks mean "enqueued"; wait until the shard workers applied
    // everything and the publisher has seen the quiescent state.
    let mut client = Client::connect(&config.addr)?;
    await_quiescence(&mut client, config.items)?;
    let elapsed = start.elapsed();

    let check = if config.check {
        Some(check_answers(&mut client, config, stream)?)
    } else {
        None
    };

    let elapsed_secs = elapsed.as_secs_f64();
    let rtts: Vec<&[u64]> = per_conn.iter().map(|s| s.rtts.as_slice()).collect();
    Ok(LoadReport {
        items: config.items,
        elapsed_secs,
        meps: config.items as f64 / elapsed_secs.max(1e-9) / 1e6,
        overload_retries: retries.into_inner(),
        queries_issued: queries.into_inner(),
        latency: summarize_latency(&rtts),
        wire: summarize_wire(&per_conn),
        check,
    })
}

/// One ingest connection's raw measurements.
#[derive(Debug, Default)]
struct ConnSamples {
    /// Per-frame round trips (send to ack, retries included), µs.
    rtts: Vec<u64>,
    /// Per-frame request encode time, ns.
    enc_ns: Vec<u64>,
    /// Per-frame ack decode time (last attempt), ns.
    dec_ns: Vec<u64>,
    /// The connection ran BIN1.
    binary: bool,
}

/// Force the requested wire mode on a fresh connection.
fn apply_wire(client: &mut Client, wire: WireMode) -> Result<()> {
    match wire {
        WireMode::Auto => Ok(()),
        WireMode::Json => {
            client.set_binary(false);
            Ok(())
        }
        WireMode::Binary => {
            if client.set_binary(true) {
                Ok(())
            } else {
                Err(CotsError::Protocol(
                    "--wire binary: the server did not advertise the `bin` feature".into(),
                ))
            }
        }
    }
}

/// One `INGEST` with overload retries (mirroring [`Client::ingest`]),
/// timing the encode and the final ack decode separately from the round
/// trip. Returns `(retries, encode_ns, decode_ns)`.
fn timed_ingest(client: &mut Client, keys: &[u64]) -> Result<(u64, u64, u64)> {
    let t = Instant::now();
    let payload = client.encode_ingest(keys);
    let enc_ns = t.elapsed().as_nanos() as u64;
    let mut retries = 0u64;
    loop {
        client.send_payload(&payload)?;
        let raw = client.recv_payload()?;
        let t = Instant::now();
        let response = Client::decode_response(&raw)?;
        let dec_ns = t.elapsed().as_nanos() as u64;
        match response {
            Response::IngestAck { enqueued } => {
                if enqueued != keys.len() as u64 {
                    return Err(CotsError::Protocol(format!(
                        "acked {enqueued} of {} keys",
                        keys.len()
                    )));
                }
                return Ok((retries, enc_ns, dec_ns));
            }
            Response::Overloaded => {
                retries += 1;
                std::thread::sleep(Duration::from_micros((50 * retries).min(5_000)));
            }
            other => {
                return Err(CotsError::Protocol(format!(
                    "unexpected ingest response: {other:?}"
                )))
            }
        }
    }
}

/// Aggregate per-connection RTT samples into a [`LatencySummary`].
fn summarize_latency(per_conn: &[&[u64]]) -> Option<LatencySummary> {
    let worst_connection_p99_us = per_conn
        .iter()
        .filter_map(|rtts| percentile(rtts, 99))
        .max()?;
    let all: Vec<u64> = per_conn.iter().flat_map(|r| r.iter()).copied().collect();
    Some(LatencySummary {
        samples: all.len() as u64,
        p50_us: percentile(&all, 50)?,
        p99_us: percentile(&all, 99)?,
        max_us: all.iter().copied().max()?,
        worst_connection_p99_us,
    })
}

/// Aggregate per-connection codec samples into a [`WireSummary`].
fn summarize_wire(per_conn: &[ConnSamples]) -> Option<WireSummary> {
    let enc: Vec<u64> = per_conn.iter().flat_map(|s| s.enc_ns.iter()).copied().collect();
    let dec: Vec<u64> = per_conn.iter().flat_map(|s| s.dec_ns.iter()).copied().collect();
    let binary = !per_conn.is_empty() && per_conn.iter().all(|s| s.binary);
    Some(WireSummary {
        mode: if binary { "binary" } else { "json" }.to_string(),
        frames: enc.len() as u64,
        encode_p50_ns: percentile(&enc, 50)?,
        encode_p99_ns: percentile(&enc, 99)?,
        decode_p50_ns: percentile(&dec, 50)?,
        decode_p99_ns: percentile(&dec, 99)?,
    })
}

/// Nearest-rank percentile (`p` in 0..=100); `None` on an empty set.
fn percentile(samples: &[u64], p: u64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = (p as usize * sorted.len()).div_ceil(100).saturating_sub(1);
    sorted.get(idx.min(sorted.len() - 1)).copied()
}

/// Poll STATS until `items` are applied and the published snapshot has
/// zero staleness.
pub fn await_quiescence(client: &mut Client, items: u64) -> Result<()> {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = client.stats()?;
        if stats.applied_keys() >= items && stats.staleness == 0 {
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(CotsError::Protocol(format!(
                "server did not quiesce: {} of {items} applied, staleness {}",
                stats.applied_keys(),
                stats.staleness
            )));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Verify the server's `frequent(phi)` answer against exact truth: full
/// recall of the truly frequent set and the Space Saving bound
/// `count ≥ true ≥ count − error` for every reported entry.
fn check_answers(client: &mut Client, config: &LoadConfig, stream: &[u64]) -> Result<CheckReport> {
    let truth = ExactCounter::from_stream(stream);
    let threshold = Threshold::Fraction(config.phi).resolve(config.items);
    let truly: Vec<(u64, u64)> = truth.frequent(Threshold::Count(threshold));

    let (entries, total, stamp) = client.query(QueryReq::Frequent { phi: config.phi })?;
    if total != config.items || stamp.staleness != 0 {
        return Err(CotsError::Protocol(format!(
            "check ran against a stale snapshot: total {total}, staleness {}",
            stamp.staleness
        )));
    }
    let missed = truly
        .iter()
        .filter(|(k, _)| !entries.iter().any(|e| e.item == *k))
        .count();
    let bound_violations = entries
        .iter()
        .filter(|e| {
            let t = truth.count(&e.item);
            let ok = e.count >= t && e.count - e.error <= t;
            if !ok {
                eprintln!(
                    "loadgen: bound violation: item {} count {} error {} true {}",
                    e.item, e.count, e.error, t
                );
            }
            !ok
        })
        .count();
    Ok(CheckReport {
        phi: config.phi,
        threshold,
        truly_frequent: truly.len(),
        reported: entries.len(),
        missed,
        bound_violations,
        passed: missed == 0 && bound_violations == 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_round_trip_json() {
        let r = LoadReport {
            items: 10,
            elapsed_secs: 0.5,
            meps: 0.02,
            overload_retries: 3,
            queries_issued: 8,
            latency: Some(LatencySummary {
                samples: 12,
                p50_us: 180,
                p99_us: 950,
                max_us: 1400,
                worst_connection_p99_us: 1100,
            }),
            wire: Some(WireSummary {
                mode: "binary".into(),
                frames: 12,
                encode_p50_ns: 900,
                encode_p99_ns: 4_000,
                decode_p50_ns: 150,
                decode_p99_ns: 800,
            }),
            check: Some(CheckReport {
                phi: 0.01,
                threshold: 1,
                truly_frequent: 4,
                reported: 5,
                missed: 0,
                bound_violations: 0,
                passed: true,
            }),
        };
        let back: LoadReport =
            cots_core::json::from_str(&cots_core::json::to_string(&r)).unwrap();
        assert_eq!(back, r);
        let none = LoadReport {
            latency: None,
            wire: None,
            check: None,
            ..r
        };
        let back: LoadReport =
            cots_core::json::from_str(&cots_core::json::to_string(&none)).unwrap();
        assert_eq!(back.check, None);
        assert_eq!(back.latency, None);
        assert_eq!(back.wire, None);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 50), None);
        assert_eq!(percentile(&[7], 50), Some(7));
        assert_eq!(percentile(&[7], 99), Some(7));
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), Some(50));
        assert_eq!(percentile(&v, 99), Some(99));
        assert_eq!(percentile(&v, 100), Some(100));
        // Round-robin fairness summary picks the worst tail.
        let s = summarize_latency(&[&[10, 10, 10], &[10, 10, 500]]).unwrap();
        assert_eq!(s.samples, 6);
        assert_eq!(s.worst_connection_p99_us, 500);
        assert_eq!(s.max_us, 500);
    }
}
