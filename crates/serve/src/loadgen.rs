//! The load generator behind `cots-load` and the service benchmark:
//! replays a deterministic Zipf stream over the wire, optionally fires
//! concurrent queries, and checks answers against exact ground truth.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use cots_core::json::{FromJson, Json, JsonResult, ToJson};
use cots_core::{CotsError, Result, Threshold};
use cots_datagen::{ExactCounter, StreamSpec};

use crate::client::Client;
use crate::protocol::QueryReq;

/// What to replay and how hard.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address, e.g. `127.0.0.1:4040`.
    pub addr: String,
    /// Stream length.
    pub items: u64,
    /// Distinct-key alphabet size.
    pub alphabet: usize,
    /// Zipf skew.
    pub alpha: f64,
    /// Stream seed (byte-for-byte reproducible).
    pub seed: u64,
    /// Skip this many leading items of the seeded stream and replay the
    /// next `items` after them. A crashed-and-recovered server can be
    /// driven forward deterministically: re-run with the same seed and
    /// `resume_from` = items already delivered, and the generator sends
    /// exactly the unsent suffix.
    pub resume_from: u64,
    /// Keys per `INGEST` frame.
    pub batch: usize,
    /// Parallel ingest connections.
    pub connections: usize,
    /// Background `frequent(phi)` queries per second (0 = none).
    pub qps: u64,
    /// Support fraction for queries and `--check`.
    pub phi: f64,
    /// Verify answers against exact ground truth after quiescence.
    pub check: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:4040".into(),
            items: 1_000_000,
            alphabet: 100_000,
            alpha: 1.5,
            seed: 42,
            resume_from: 0,
            batch: 8_192,
            connections: 2,
            qps: 0,
            phi: 0.01,
            check: false,
        }
    }
}

/// Result of the answer check against exact truth.
#[derive(Debug, Clone, PartialEq)]
pub struct CheckReport {
    /// Support fraction checked.
    pub phi: f64,
    /// Resolved count threshold (`ceil(phi × items)`).
    pub threshold: u64,
    /// Keys whose true count meets the threshold.
    pub truly_frequent: usize,
    /// Entries the server reported for `frequent(phi)`.
    pub reported: usize,
    /// Truly frequent keys missing from the answer (must be 0: Space
    /// Saving guarantees recall 1.0 at quiescence).
    pub missed: usize,
    /// Reported entries violating `count ≥ true ≥ count − error`.
    pub bound_violations: usize,
    /// All of the above held.
    pub passed: bool,
}

/// Ingest-frame round-trip latency over one load run, aggregated from
/// per-connection samples (one sample per `INGEST` frame: send to ack,
/// retries included).
#[derive(Debug, Clone, PartialEq)]
pub struct LatencySummary {
    /// Round trips measured.
    pub samples: u64,
    /// Median round trip, microseconds.
    pub p50_us: u64,
    /// 99th-percentile round trip, microseconds.
    pub p99_us: u64,
    /// Slowest round trip, microseconds.
    pub max_us: u64,
    /// Largest per-connection p99 — a fairness signal: when one
    /// connection's tail is far above the pooled p99, the front-end is
    /// starving it.
    pub worst_connection_p99_us: u64,
}

/// Everything one load run observed.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadReport {
    /// Items streamed.
    pub items: u64,
    /// Wall-clock seconds from first frame to all items applied.
    pub elapsed_secs: f64,
    /// Million items per second over the wire path.
    pub meps: f64,
    /// `OVERLOADED` responses absorbed by retry (backpressure working).
    pub overload_retries: u64,
    /// Background queries answered during ingest.
    pub queries_issued: u64,
    /// Ingest round-trip latency (absent only for zero-frame runs).
    pub latency: Option<LatencySummary>,
    /// Answer verification, when requested.
    pub check: Option<CheckReport>,
}

impl ToJson for CheckReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("phi", self.phi.to_json()),
            ("threshold", self.threshold.to_json()),
            ("truly_frequent", self.truly_frequent.to_json()),
            ("reported", self.reported.to_json()),
            ("missed", self.missed.to_json()),
            ("bound_violations", self.bound_violations.to_json()),
            ("passed", self.passed.to_json()),
        ])
    }
}

impl FromJson for CheckReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            phi: f64::from_json(v.field("phi")?)?,
            threshold: u64::from_json(v.field("threshold")?)?,
            truly_frequent: usize::from_json(v.field("truly_frequent")?)?,
            reported: usize::from_json(v.field("reported")?)?,
            missed: usize::from_json(v.field("missed")?)?,
            bound_violations: usize::from_json(v.field("bound_violations")?)?,
            passed: bool::from_json(v.field("passed")?)?,
        })
    }
}

impl ToJson for LatencySummary {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("samples", self.samples.to_json()),
            ("p50_us", self.p50_us.to_json()),
            ("p99_us", self.p99_us.to_json()),
            ("max_us", self.max_us.to_json()),
            (
                "worst_connection_p99_us",
                self.worst_connection_p99_us.to_json(),
            ),
        ])
    }
}

impl FromJson for LatencySummary {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            samples: u64::from_json(v.field("samples")?)?,
            p50_us: u64::from_json(v.field("p50_us")?)?,
            p99_us: u64::from_json(v.field("p99_us")?)?,
            max_us: u64::from_json(v.field("max_us")?)?,
            worst_connection_p99_us: u64::from_json(v.field("worst_connection_p99_us")?)?,
        })
    }
}

impl ToJson for LoadReport {
    fn to_json(&self) -> Json {
        Json::obj(vec![
            ("items", self.items.to_json()),
            ("elapsed_secs", self.elapsed_secs.to_json()),
            ("meps", self.meps.to_json()),
            ("overload_retries", self.overload_retries.to_json()),
            ("queries_issued", self.queries_issued.to_json()),
            ("latency", self.latency.to_json()),
            ("check", self.check.to_json()),
        ])
    }
}

impl FromJson for LoadReport {
    fn from_json(v: &Json) -> JsonResult<Self> {
        Ok(Self {
            items: u64::from_json(v.field("items")?)?,
            elapsed_secs: f64::from_json(v.field("elapsed_secs")?)?,
            meps: f64::from_json(v.field("meps")?)?,
            overload_retries: u64::from_json(v.field("overload_retries")?)?,
            queries_issued: u64::from_json(v.field("queries_issued")?)?,
            latency: Option::<LatencySummary>::from_json(v.field("latency")?)?,
            check: Option::<CheckReport>::from_json(v.field("check")?)?,
        })
    }
}

/// Replay the configured stream against the server and report.
///
/// Drives `connections` persistent ingest connections; the stream's
/// `INGEST` batches are dealt round-robin across them (connection `c`
/// sends batches `c, c+connections, c+2·connections, …`), so every
/// connection stays busy for the whole run even when there are fewer
/// batches than a contiguous split would have produced per connection.
/// With `qps > 0` one extra query connection fires `frequent(phi)` at
/// the requested rate. Returns once every item is *applied* (not merely
/// acked) and, if `check` is set, after verifying the frequent-set
/// answer against exact truth.
pub fn run(config: &LoadConfig) -> Result<LoadReport> {
    if config.items == 0 || config.batch == 0 || config.connections == 0 {
        return Err(CotsError::InvalidRun(
            "items, batch and connections must be positive".into(),
        ));
    }
    if config.check && config.resume_from > 0 {
        return Err(CotsError::InvalidRun(
            "--check needs the full stream; it cannot be combined with --resume \
             (the server holds recovered state the checker did not generate)"
                .into(),
        ));
    }
    // Deterministic resume: materialize the prefix too, then drop it, so
    // the suffix is byte-for-byte what a full run would have sent next.
    let full = StreamSpec::zipf(
        (config.resume_from + config.items) as usize,
        config.alphabet,
        config.alpha,
        config.seed,
    )
    .generate();
    let stream = &full[config.resume_from as usize..];

    let start = Instant::now();
    let ingest_done = Arc::new(AtomicBool::new(false));
    let retries = AtomicU64::new(0);
    let queries = AtomicU64::new(0);

    let batches: Vec<&[u64]> = stream.chunks(config.batch).collect();
    let per_conn_lat: Vec<Vec<u64>> = std::thread::scope(|s| -> Result<Vec<Vec<u64>>> {
        let batches = &batches;
        let mut handles = Vec::new();
        for c in 0..config.connections {
            let retries = &retries;
            handles.push(s.spawn(move || -> Result<Vec<u64>> {
                let mut client = Client::connect(&config.addr)?;
                let mut rtts = Vec::new();
                for batch in batches.iter().skip(c).step_by(config.connections) {
                    let sent = Instant::now();
                    let r = client.ingest(batch)?;
                    rtts.push(sent.elapsed().as_micros() as u64);
                    retries.fetch_add(r, Ordering::Relaxed);
                }
                Ok(rtts)
            }));
        }
        let query_handle = (config.qps > 0).then(|| {
            let ingest_done = ingest_done.clone();
            let queries = &queries;
            let gap = Duration::from_nanos(1_000_000_000 / config.qps);
            s.spawn(move || -> Result<()> {
                let mut client = Client::connect(&config.addr)?;
                while !ingest_done.load(Ordering::Acquire) {
                    client.query(QueryReq::Frequent { phi: config.phi })?;
                    queries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(gap);
                }
                Ok(())
            })
        });
        let mut first_err = None;
        let mut lats = Vec::new();
        for h in handles {
            match h.join().expect("ingest thread panicked") {
                Ok(rtts) => lats.push(rtts),
                Err(e) => {
                    first_err.get_or_insert(e);
                }
            }
        }
        ingest_done.store(true, Ordering::Release);
        if let Some(h) = query_handle {
            if let Err(e) = h.join().expect("query thread panicked") {
                first_err.get_or_insert(e);
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(lats),
        }
    })?;

    // Acks mean "enqueued"; wait until the shard workers applied
    // everything and the publisher has seen the quiescent state.
    let mut client = Client::connect(&config.addr)?;
    await_quiescence(&mut client, config.items)?;
    let elapsed = start.elapsed();

    let check = if config.check {
        Some(check_answers(&mut client, config, stream)?)
    } else {
        None
    };

    let elapsed_secs = elapsed.as_secs_f64();
    Ok(LoadReport {
        items: config.items,
        elapsed_secs,
        meps: config.items as f64 / elapsed_secs.max(1e-9) / 1e6,
        overload_retries: retries.into_inner(),
        queries_issued: queries.into_inner(),
        latency: summarize_latency(&per_conn_lat),
        check,
    })
}

/// Aggregate per-connection RTT samples into a [`LatencySummary`].
fn summarize_latency(per_conn: &[Vec<u64>]) -> Option<LatencySummary> {
    let worst_connection_p99_us = per_conn
        .iter()
        .filter_map(|rtts| percentile(rtts, 99))
        .max()?;
    let all: Vec<u64> = per_conn.iter().flatten().copied().collect();
    Some(LatencySummary {
        samples: all.len() as u64,
        p50_us: percentile(&all, 50)?,
        p99_us: percentile(&all, 99)?,
        max_us: all.iter().copied().max()?,
        worst_connection_p99_us,
    })
}

/// Nearest-rank percentile (`p` in 0..=100); `None` on an empty set.
fn percentile(samples: &[u64], p: u64) -> Option<u64> {
    if samples.is_empty() {
        return None;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let idx = (p as usize * sorted.len()).div_ceil(100).saturating_sub(1);
    sorted.get(idx.min(sorted.len() - 1)).copied()
}

/// Poll STATS until `items` are applied and the published snapshot has
/// zero staleness.
pub fn await_quiescence(client: &mut Client, items: u64) -> Result<()> {
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let stats = client.stats()?;
        if stats.applied_keys() >= items && stats.staleness == 0 {
            return Ok(());
        }
        if Instant::now() > deadline {
            return Err(CotsError::Protocol(format!(
                "server did not quiesce: {} of {items} applied, staleness {}",
                stats.applied_keys(),
                stats.staleness
            )));
        }
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Verify the server's `frequent(phi)` answer against exact truth: full
/// recall of the truly frequent set and the Space Saving bound
/// `count ≥ true ≥ count − error` for every reported entry.
fn check_answers(client: &mut Client, config: &LoadConfig, stream: &[u64]) -> Result<CheckReport> {
    let truth = ExactCounter::from_stream(stream);
    let threshold = Threshold::Fraction(config.phi).resolve(config.items);
    let truly: Vec<(u64, u64)> = truth.frequent(Threshold::Count(threshold));

    let (entries, total, stamp) = client.query(QueryReq::Frequent { phi: config.phi })?;
    if total != config.items || stamp.staleness != 0 {
        return Err(CotsError::Protocol(format!(
            "check ran against a stale snapshot: total {total}, staleness {}",
            stamp.staleness
        )));
    }
    let missed = truly
        .iter()
        .filter(|(k, _)| !entries.iter().any(|e| e.item == *k))
        .count();
    let bound_violations = entries
        .iter()
        .filter(|e| {
            let t = truth.count(&e.item);
            let ok = e.count >= t && e.count - e.error <= t;
            if !ok {
                eprintln!(
                    "loadgen: bound violation: item {} count {} error {} true {}",
                    e.item, e.count, e.error, t
                );
            }
            !ok
        })
        .count();
    Ok(CheckReport {
        phi: config.phi,
        threshold,
        truly_frequent: truly.len(),
        reported: entries.len(),
        missed,
        bound_violations,
        passed: missed == 0 && bound_violations == 0,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_round_trip_json() {
        let r = LoadReport {
            items: 10,
            elapsed_secs: 0.5,
            meps: 0.02,
            overload_retries: 3,
            queries_issued: 8,
            latency: Some(LatencySummary {
                samples: 12,
                p50_us: 180,
                p99_us: 950,
                max_us: 1400,
                worst_connection_p99_us: 1100,
            }),
            check: Some(CheckReport {
                phi: 0.01,
                threshold: 1,
                truly_frequent: 4,
                reported: 5,
                missed: 0,
                bound_violations: 0,
                passed: true,
            }),
        };
        let back: LoadReport =
            cots_core::json::from_str(&cots_core::json::to_string(&r)).unwrap();
        assert_eq!(back, r);
        let none = LoadReport {
            latency: None,
            check: None,
            ..r
        };
        let back: LoadReport =
            cots_core::json::from_str(&cots_core::json::to_string(&none)).unwrap();
        assert_eq!(back.check, None);
        assert_eq!(back.latency, None);
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        assert_eq!(percentile(&[], 50), None);
        assert_eq!(percentile(&[7], 50), Some(7));
        assert_eq!(percentile(&[7], 99), Some(7));
        let v: Vec<u64> = (1..=100).collect();
        assert_eq!(percentile(&v, 50), Some(50));
        assert_eq!(percentile(&v, 99), Some(99));
        assert_eq!(percentile(&v, 100), Some(100));
        // Round-robin fairness summary picks the worst tail.
        let s = summarize_latency(&[vec![10, 10, 10], vec![10, 10, 500]]).unwrap();
        assert_eq!(s.samples, 6);
        assert_eq!(s.worst_connection_p99_us, 500);
        assert_eq!(s.max_us, 500);
    }
}
