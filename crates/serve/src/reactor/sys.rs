//! The one `unsafe` module of the reactor: raw readiness syscalls.
//!
//! Everything FFI lives here, behind the safe [`Poller`] facade — the
//! rest of the reactor (and the rest of the crate) contains no `unsafe`
//! at all, which is enforced by `cargo xtask lint-unsafe` plus review.
//! The declarations link directly against the platform C library that
//! every Rust binary on these targets already links; no new crate is
//! vendored or added.
//!
//! Two backends implement the same interface:
//!
//! * **epoll** (Linux): one `epoll` instance per reactor thread,
//!   edge-triggered (`EPOLLET`) registration with both `IN` and `OUT`
//!   interest. Edge-triggered is what makes tens of thousands of mostly
//!   idle connections cheap: the kernel reports each readiness
//!   *transition* once instead of re-reporting every ready socket on
//!   every wait.
//! * **poll** (portable fallback, any Unix): a level-triggered
//!   `poll(2)` sweep over the registered set. Used on non-Linux hosts
//!   (macOS CI) and selectable anywhere with `COTS_POLLER=poll` for
//!   differential testing. O(n) per wait, so it is the compatibility
//!   path, not the scalability path.
//!
//! The connection driver is written to be correct under either
//! semantics: it always reads until `WouldBlock` and always tries to
//! flush pending writes when told the socket is writable, so missing
//! *extra* level-triggered wakeups (epoll) or receiving them (poll)
//! changes performance only.
//!
//! On non-Unix targets a stub backend compiles and reports
//! `Unsupported` at construction; the server then refuses
//! `--io-model reactor` with a clear error instead of failing to build.

use std::io;
#[cfg(unix)]
use std::os::unix::io::RawFd;

/// Readiness reported for one registered connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// The caller-chosen token the fd was registered under.
    pub token: usize,
    /// Bytes may be readable (or the peer closed — reads then return 0).
    pub readable: bool,
    /// The socket may accept writes again.
    pub writable: bool,
    /// Error/hangup condition; the connection should be driven once more
    /// (the read will surface the exact condition) and then closed.
    pub hangup: bool,
}

/// Which backend a [`Poller`] runs on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PollerKind {
    /// Linux `epoll`, edge-triggered.
    Epoll,
    /// Portable `poll(2)`, level-triggered.
    Poll,
}

impl std::fmt::Display for PollerKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PollerKind::Epoll => write!(f, "epoll"),
            PollerKind::Poll => write!(f, "poll"),
        }
    }
}

/// A readiness poller over raw socket fds.
///
/// The caller keeps owning the sockets; `Poller` never closes them. On
/// the epoll backend the kernel drops a registration automatically when
/// the last descriptor for the socket is closed, and on the poll
/// backend [`Poller::deregister`] removes it from the sweep set — the
/// reactor calls `deregister` before dropping a stream either way.
pub enum Poller {
    /// Linux epoll instance.
    #[cfg(target_os = "linux")]
    Epoll(epoll::EpollPoller),
    /// Portable poll(2) sweep set.
    #[cfg(unix)]
    Poll(poll::PollPoller),
    /// Unsupported platform marker (never constructed; see [`Poller::new`]).
    #[cfg(not(unix))]
    Unsupported,
}

impl Poller {
    /// Open a poller on the best backend for this platform.
    ///
    /// Linux uses epoll unless the `COTS_POLLER=poll` environment
    /// variable forces the portable backend (differential testing);
    /// other Unixes always use `poll(2)`; elsewhere this returns
    /// `Unsupported` and the caller falls back to the threaded model.
    #[cfg(target_os = "linux")]
    pub fn new() -> io::Result<Self> {
        if std::env::var("COTS_POLLER").is_ok_and(|v| v == "poll") {
            Ok(Poller::Poll(poll::PollPoller::new()))
        } else {
            Ok(Poller::Epoll(epoll::EpollPoller::new()?))
        }
    }

    /// Open a poller on the portable `poll(2)` backend.
    #[cfg(all(unix, not(target_os = "linux")))]
    pub fn new() -> io::Result<Self> {
        Ok(Poller::Poll(poll::PollPoller::new()))
    }

    /// No readiness backend exists on this platform.
    #[cfg(not(unix))]
    pub fn new() -> io::Result<Self> {
        Err(io::Error::new(
            io::ErrorKind::Unsupported,
            "no readiness backend on this platform; use --io-model threads",
        ))
    }

    /// Which backend this poller runs on.
    pub fn kind(&self) -> PollerKind {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(_) => PollerKind::Epoll,
            #[cfg(unix)]
            Poller::Poll(_) => PollerKind::Poll,
            #[cfg(not(unix))]
            Poller::Unsupported => PollerKind::Poll,
        }
    }

    /// Register a socket under `token` with read+write interest.
    #[cfg(unix)]
    pub fn register(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.register(fd, token),
            Poller::Poll(p) => {
                p.register(fd, token);
                Ok(())
            }
        }
    }

    /// Register with *read-only* interest — for wakeup channels, whose
    /// write side is always ready and would otherwise turn every
    /// level-triggered sweep into a busy loop.
    #[cfg(unix)]
    pub fn register_read(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.register_read(fd, token),
            Poller::Poll(p) => {
                p.register_read(fd, token);
                Ok(())
            }
        }
    }

    /// Remove a socket from the interest set. Call before closing it.
    #[cfg(unix)]
    pub fn deregister(&mut self, fd: RawFd) {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.deregister(fd),
            Poller::Poll(p) => p.deregister(fd),
        }
    }

    /// Block for up to `timeout_ms` and append readiness to `events`.
    ///
    /// Returns with an empty append on timeout or `EINTR`; the caller's
    /// loop re-checks its shutdown flag either way.
    #[cfg(unix)]
    pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
        match self {
            #[cfg(target_os = "linux")]
            Poller::Epoll(p) => p.wait(events, timeout_ms),
            Poller::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

#[cfg(target_os = "linux")]
pub(crate) mod epoll {
    //! The edge-triggered epoll backend.

    use std::io;
    use std::os::raw::c_int;
    use std::os::unix::io::RawFd;

    use super::Event;

    // Stable Linux UAPI constants (include/uapi/linux/eventpoll.h).
    const EPOLL_CLOEXEC: c_int = 0o2000000;
    const EPOLL_CTL_ADD: c_int = 1;
    const EPOLL_CTL_DEL: c_int = 2;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;

    /// `struct epoll_event`. The kernel ABI packs it on x86-64 (the
    /// 12-byte layout every other architecture gets via natural u32
    /// alignment there requires `packed`); other architectures use the
    /// naturally aligned 16-byte layout.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    /// Events fetched per `epoll_wait` call.
    const WAIT_BATCH: usize = 1024;

    /// One epoll instance; owns its epoll fd (closed on drop).
    pub struct EpollPoller {
        epfd: RawFd,
        /// Reused kernel-filled buffer for `epoll_wait`.
        buf: Vec<EpollEvent>,
    }

    impl EpollPoller {
        /// Create an epoll instance (close-on-exec).
        pub fn new() -> io::Result<Self> {
            // SAFETY: epoll_create1 takes no pointers; it either returns
            // a fresh fd we now own or -1 with errno set.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Self {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; WAIT_BATCH],
            })
        }

        /// Register `fd` edge-triggered for read+write+peer-hangup.
        pub fn register(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
            self.add(fd, token, EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET)
        }

        /// Register `fd` edge-triggered for read interest only (wakeup
        /// channels).
        pub fn register_read(&mut self, fd: RawFd, token: usize) -> io::Result<()> {
            self.add(fd, token, EPOLLIN | EPOLLET)
        }

        fn add(&mut self, fd: RawFd, token: usize, interest: u32) -> io::Result<()> {
            let mut ev = EpollEvent {
                events: interest,
                data: token as u64,
            };
            // SAFETY: `self.epfd` is a live epoll fd we own, `fd` is a
            // caller-owned open socket, and `ev` outlives the call (the
            // kernel copies it before returning).
            let rc = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_ADD, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        /// Drop `fd` from the interest set (no-op if already gone).
        pub fn deregister(&mut self, fd: RawFd) {
            let mut ev = EpollEvent { events: 0, data: 0 };
            // SAFETY: same fd validity argument as `register`; DEL
            // ignores the event argument (passed non-null for pre-2.6.9
            // kernel compatibility, per the man page). Failure (ENOENT
            // after the fd was closed elsewhere) is harmless: the
            // registration is gone either way.
            let _ = unsafe { epoll_ctl(self.epfd, EPOLL_CTL_DEL, fd, &mut ev) };
        }

        /// Wait for readiness; appends to `events`.
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            // SAFETY: `buf` is a live allocation of WAIT_BATCH
            // `EpollEvent`s and we pass exactly that capacity, so the
            // kernel writes only within bounds; `self.epfd` is owned.
            let n = unsafe {
                epoll_wait(
                    self.epfd,
                    self.buf.as_mut_ptr(),
                    self.buf.len() as c_int,
                    timeout_ms,
                )
            };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(()); // EINTR: treat as an empty wakeup
                }
                return Err(e);
            }
            for raw in self.buf.iter().take(n as usize) {
                // Copy out of the (possibly packed) struct first;
                // field reads copy by value, so alignment is fine.
                let bits = raw.events;
                let token = raw.data as usize;
                events.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP | EPOLLERR) != 0,
                    writable: bits & EPOLLOUT != 0,
                    hangup: bits & (EPOLLHUP | EPOLLERR | EPOLLRDHUP) != 0,
                });
            }
            Ok(())
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            // SAFETY: `epfd` was returned by epoll_create1 and is closed
            // exactly once, here.
            let _ = unsafe { close(self.epfd) };
        }
    }
}

#[cfg(unix)]
pub(crate) mod poll {
    //! The portable level-triggered `poll(2)` backend.

    use std::io;
    use std::os::raw::{c_int, c_short, c_ulong};
    use std::os::unix::io::RawFd;

    use super::Event;

    // POSIX poll constants (identical across Linux/macOS/BSDs).
    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    /// `struct pollfd`, identical layout on every supported Unix.
    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: c_ulong, timeout: c_int) -> c_int;
    }

    /// Level-triggered sweep over the registered set.
    pub struct PollPoller {
        /// Registered `(fd, token, interest)` triples, swept in order.
        /// Interest matters: a wakeup channel registered with `POLLOUT`
        /// would be permanently ready and turn the sweep into a spin.
        registered: Vec<(RawFd, usize, c_short)>,
        /// Reused pollfd array mirroring `registered`.
        fds: Vec<PollFd>,
    }

    impl PollPoller {
        /// An empty sweep set.
        pub fn new() -> Self {
            Self {
                registered: Vec::new(),
                fds: Vec::new(),
            }
        }

        /// Add `fd` under `token` with read+write interest.
        pub fn register(&mut self, fd: RawFd, token: usize) {
            self.registered.push((fd, token, POLLIN | POLLOUT));
        }

        /// Add `fd` under `token` with read-only interest.
        pub fn register_read(&mut self, fd: RawFd, token: usize) {
            self.registered.push((fd, token, POLLIN));
        }

        /// Remove `fd` from the sweep set.
        pub fn deregister(&mut self, fd: RawFd) {
            self.registered.retain(|&(f, _, _)| f != fd);
        }

        /// Sweep once; appends readiness to `events`.
        pub fn wait(&mut self, events: &mut Vec<Event>, timeout_ms: i32) -> io::Result<()> {
            self.fds.clear();
            self.fds
                .extend(self.registered.iter().map(|&(fd, _, interest)| PollFd {
                    fd,
                    events: interest,
                    revents: 0,
                }));
            if self.fds.is_empty() {
                // Nothing registered: plain sleep keeps the contract
                // (poll(NULL, 0, t) would too, but this avoids the call).
                std::thread::sleep(std::time::Duration::from_millis(timeout_ms.max(0) as u64));
                return Ok(());
            }
            // SAFETY: `fds` is a live allocation of exactly `len`
            // `PollFd`s (layout-identical to the C struct) and the
            // kernel only writes the `revents` field of those entries.
            let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as c_ulong, timeout_ms) };
            if n < 0 {
                let e = io::Error::last_os_error();
                if e.kind() == io::ErrorKind::Interrupted {
                    return Ok(());
                }
                return Err(e);
            }
            for (slot, &(_, token, _)) in self.fds.iter().zip(self.registered.iter()) {
                let r = slot.revents;
                if r == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: r & (POLLIN | POLLHUP | POLLERR) != 0,
                    writable: r & POLLOUT != 0,
                    hangup: r & (POLLHUP | POLLERR) != 0,
                });
            }
            Ok(())
        }
    }
}

#[cfg(all(test, unix))]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;

    fn pair() -> (TcpStream, TcpStream) {
        let listener = TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let a = TcpStream::connect(addr).unwrap();
        let (b, _) = listener.accept().unwrap();
        (a, b)
    }

    fn backends() -> Vec<Poller> {
        let mut v = vec![Poller::Poll(poll::PollPoller::new())];
        #[cfg(target_os = "linux")]
        v.push(Poller::Epoll(epoll::EpollPoller::new().unwrap()));
        v
    }

    #[test]
    fn readiness_round_trip_on_every_backend() {
        for mut poller in backends() {
            let (mut a, b) = pair();
            b.set_nonblocking(true).unwrap();
            poller.register(b.as_raw_fd(), 7).unwrap();

            // Freshly registered socket: writable, not readable.
            let mut events = Vec::new();
            poller.wait(&mut events, 100).unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.writable),
                "{}: new socket should report writable",
                poller.kind()
            );
            assert!(events.iter().all(|e| !e.readable));

            // Data arrives: readable edge.
            a.write_all(b"ping").unwrap();
            let mut events = Vec::new();
            poller.wait(&mut events, 1000).unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && e.readable),
                "{}: pending data should report readable",
                poller.kind()
            );
            let mut buf = [0u8; 8];
            let n = (&b).read(&mut buf).unwrap();
            assert_eq!(&buf[..n], b"ping");

            // Peer hangup surfaces as readable (read returns 0) and/or hangup.
            drop(a);
            let mut events = Vec::new();
            poller.wait(&mut events, 1000).unwrap();
            assert!(
                events.iter().any(|e| e.token == 7 && (e.readable || e.hangup)),
                "{}: hangup must wake the connection",
                poller.kind()
            );
            poller.deregister(b.as_raw_fd());
        }
    }

    #[test]
    fn empty_poller_times_out_quietly() {
        for mut poller in backends() {
            let mut events = Vec::new();
            let t0 = std::time::Instant::now();
            poller.wait(&mut events, 20).unwrap();
            assert!(events.is_empty());
            assert!(t0.elapsed() < std::time::Duration::from_secs(5));
        }
    }
}
