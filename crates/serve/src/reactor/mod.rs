//! The event-driven reactor: tens of thousands of connections on a
//! small fixed thread pool.
//!
//! The blocking server model costs one OS thread and one set of shard
//! rings per connection — fine for hundreds of connections, fatal for
//! tens of thousands. The reactor inverts that: a fixed pool of
//! reactor threads each owns one readiness [`Poller`](sys::Poller)
//! (epoll on Linux, `poll(2)` elsewhere), one [`ShardSender`] feeding
//! the per-shard SPSC rings, and a slab of nonblocking
//! [`Connection`](conn::Connection) state machines. N connections cost
//! N small buffers, not N threads or N×shards rings.
//!
//! Topology:
//!
//! ```text
//! acceptor ──round robin──▶ inbox[r] ──adopt──▶ reactor thread r
//!                                                │  epoll_wait
//!                                                ▼
//!                                       connection state machines
//!                                                │  one ShardSender
//!                                                ▼
//!                                        per-shard SPSC rings
//! ```
//!
//! The acceptor (the listener loop in [`crate::server`]) hands each
//! accepted stream to the next inbox and writes one byte down that
//! reactor's wakeup channel (a `UnixStream` pair registered read-only
//! in the poller), popping it out of its wait immediately — without
//! this, every connection's first frames would idle for up to one wait
//! timeout before adoption. The reactor adopts new streams at the top
//! of every loop iteration, registers them edge-triggered, and from
//! then on only touches them when the kernel reports readiness. Sharing one `ShardSender` per reactor thread is
//! sound because the SPSC rings require a single producer *thread*,
//! not a single producer connection — all of this reactor's
//! connections enqueue from this thread.
//!
//! Shutdown mirrors the blocking model: the service flag flips, the
//! reactor notices at its next wakeup (immediate when the acceptor
//! joins the pool — it taps every wakeup channel first),
//! drops every connection and its `ShardSender` — closing the rings —
//! and exits; the shard workers drain and the service quiesces.
//!
//! AUDIT: locks — the inbox mutex is the only lock here and must never
//! wrap I/O; enforced by `cargo xtask audit` (lint-locks).

pub mod conn;
pub mod sys;

use std::io;
use std::net::TcpStream;
#[cfg(unix)]
use std::os::unix::io::AsRawFd;
#[cfg(unix)]
use std::os::unix::net::UnixStream;
use std::sync::Arc;
use std::thread::JoinHandle;

use parking_lot::Mutex;

use crate::service::Service;
use crate::shard::ShardSender;
use conn::{Connection, Drive};
use sys::{Event, Poller, PollerKind};

/// How long one `wait` blocks before re-checking shutdown and inboxes.
const WAIT_MS: i32 = 25;

/// Reserved token for the per-reactor wakeup channel. Never collides
/// with a slab token: the slab would have to hold `usize::MAX + 1`
/// connections first.
const WAKE_TOKEN: usize = usize::MAX;

/// Hand-off queue from the acceptor to one reactor thread.
struct Inbox {
    streams: Mutex<Vec<TcpStream>>,
}

/// A running pool of reactor threads.
pub struct ReactorPool {
    inboxes: Vec<Arc<Inbox>>,
    /// Write ends of each reactor's wakeup channel: one byte here pops
    /// the reactor out of its poll wait so adoption is immediate
    /// instead of costing up to one wait timeout of dead air.
    #[cfg(unix)]
    wakers: Vec<UnixStream>,
    handles: Vec<JoinHandle<()>>,
    backend: PollerKind,
    next: usize,
}

impl ReactorPool {
    /// Spawn `threads` reactor threads over `service`.
    ///
    /// Fails fast if the platform has no readiness backend (see
    /// [`sys::Poller::new`]) or a thread cannot be spawned.
    pub fn spawn(service: &Arc<Service>, threads: usize) -> io::Result<Self> {
        let threads = threads.max(1);
        let mut inboxes = Vec::with_capacity(threads);
        #[cfg(unix)]
        let mut wakers = Vec::with_capacity(threads);
        let mut handles = Vec::with_capacity(threads);
        let mut backend = PollerKind::Poll;
        for r in 0..threads {
            // Construct the poller on the caller's thread so setup
            // errors surface from `spawn`, not asynchronously.
            let poller = Poller::new()?;
            backend = poller.kind();
            let inbox = Arc::new(Inbox {
                streams: Mutex::new(Vec::new()),
            });
            inboxes.push(inbox.clone());
            let service = service.clone();
            #[cfg(unix)]
            let wake_rx = {
                let (rx, tx) = UnixStream::pair()?;
                rx.set_nonblocking(true)?;
                tx.set_nonblocking(true)?;
                wakers.push(tx);
                rx
            };
            handles.push(
                std::thread::Builder::new()
                    .name(format!("cots-reactor-{r}"))
                    .spawn(move || {
                        #[cfg(unix)]
                        run_reactor(poller, inbox, wake_rx, service);
                        #[cfg(not(unix))]
                        run_reactor(poller, inbox, service);
                    })
                    .map_err(|e| io::Error::other(format!("spawn reactor: {e}")))?,
            );
        }
        Ok(Self {
            inboxes,
            #[cfg(unix)]
            wakers,
            handles,
            backend,
            next: 0,
        })
    }

    /// The readiness backend the pool runs on.
    pub fn backend(&self) -> PollerKind {
        self.backend
    }

    /// Number of reactor threads.
    pub fn threads(&self) -> usize {
        self.handles.len()
    }

    /// Hand an accepted stream to the next reactor (round robin). A
    /// wakeup byte pops that reactor out of its wait, so adoption is
    /// immediate rather than bounded by the wait timeout.
    pub fn dispatch(&mut self, stream: TcpStream) {
        let idx = self.next % self.inboxes.len();
        self.inboxes[idx].streams.lock().push(stream);
        #[cfg(unix)]
        {
            use std::io::Write;
            // WouldBlock means wakeup bytes are already pending — the
            // reactor is guaranteed to wake and sweep its inbox anyway.
            let _ = (&self.wakers[idx]).write(&[1]);
        }
        self.next = self.next.wrapping_add(1);
    }

    /// Wait for every reactor thread to exit (they exit when the
    /// service's shutdown flag flips). Wakes each reactor first so exit
    /// does not wait out a poll timeout.
    pub fn join(self) {
        #[cfg(unix)]
        {
            use std::io::Write;
            for w in &self.wakers {
                let _ = (&*w).write(&[1]);
            }
        }
        for h in self.handles {
            let _ = h.join();
        }
    }
}

/// One reactor thread: adopt, wait, drive, repeat until shutdown.
#[cfg(unix)]
fn run_reactor(mut poller: Poller, inbox: Arc<Inbox>, wake: UnixStream, service: Arc<Service>) {
    let mut sender: ShardSender = service.connect();
    // The wakeup channel keeps dispatch latency off the wait timeout.
    // If registration fails the reactor still works — adoption just
    // degrades to WAIT_MS-bounded latency.
    let _ = poller.register_read(wake.as_raw_fd(), WAKE_TOKEN);
    // Token-indexed slab: `None` slots are free and recorded in `free`.
    let mut slab: Vec<Option<Connection>> = Vec::new();
    let mut free: Vec<usize> = Vec::new();
    let mut events: Vec<Event> = Vec::new();
    // Connections whose read budget ran out mid-drive; edge-triggered
    // polling will not re-report them, so we re-drive explicitly.
    let mut again: Vec<usize> = Vec::new();

    loop {
        // Adopt newly accepted streams (lock held only for the take).
        let adopted = std::mem::take(&mut *inbox.streams.lock());
        for stream in adopted {
            if stream.set_nonblocking(true).is_err() {
                continue; // dropped: the peer sees a closed connection
            }
            let _ = stream.set_nodelay(true);
            let token = match free.pop() {
                Some(t) => t,
                None => {
                    slab.push(None);
                    slab.len() - 1
                }
            };
            let fd = stream.as_raw_fd();
            if poller.register(fd, token).is_err() {
                free.push(token);
                continue; // dropped likewise
            }
            if let Some(slot) = slab.get_mut(token) {
                *slot = Some(Connection::new(stream));
            }
        }

        if service.shutdown_requested() {
            break;
        }

        events.clear();
        // Pending re-drives must not wait behind the poll timeout.
        let timeout = if again.is_empty() { WAIT_MS } else { 0 };
        if poller.wait(&mut events, timeout).is_err() {
            break; // poller broken beyond EINTR: drop all connections
        }

        for token in std::mem::take(&mut again) {
            drive(
                &mut poller, &mut slab, &mut free, token, true, false, &service, &mut sender,
                &mut again,
            );
        }
        for ev in &events {
            if ev.token == WAKE_TOKEN {
                drain_wake(&wake);
                continue;
            }
            drive(
                &mut poller,
                &mut slab,
                &mut free,
                ev.token,
                ev.readable || ev.hangup,
                ev.writable,
                &service,
                &mut sender,
                &mut again,
            );
        }
    }

    // Teardown: deregister and drop every connection, then the sender
    // (closing this thread's rings lets the shard workers drain).
    for slot in slab.iter_mut() {
        if let Some(c) = slot.take() {
            poller.deregister(c.stream().as_raw_fd());
        }
    }
    drop(sender);
}

/// Drive one connection for one readiness report and retire it if done.
#[cfg(unix)]
#[allow(clippy::too_many_arguments)] // internal plumbing, not API
fn drive(
    poller: &mut Poller,
    slab: &mut [Option<Connection>],
    free: &mut Vec<usize>,
    token: usize,
    readable: bool,
    writable: bool,
    service: &Service,
    sender: &mut ShardSender,
    again: &mut Vec<usize>,
) {
    let Some(slot) = slab.get_mut(token) else {
        return;
    };
    let Some(c) = slot.as_mut() else {
        return; // already closed earlier in this batch
    };
    let outcome = if readable {
        c.drive_readable(service, sender)
    } else if writable {
        c.drive_writable()
    } else {
        Drive::Continue
    };
    match outcome {
        Drive::Continue => {}
        Drive::Again => again.push(token),
        Drive::Close => {
            if let Some(c) = slot.take() {
                poller.deregister(c.stream().as_raw_fd());
            }
            free.push(token);
        }
    }
}

/// Drain all pending wakeup bytes so the channel edge re-arms (and the
/// level-triggered backend stops reporting it).
#[cfg(unix)]
fn drain_wake(wake: &UnixStream) {
    use std::io::Read;
    let mut sink = [0u8; 1024];
    loop {
        match (&*wake).read(&mut sink) {
            Ok(0) => break, // all writers gone: nothing more to drain
            Ok(_) => continue,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(_) => break, // WouldBlock (drained) or a real error
        }
    }
}

/// Non-Unix stub: the pool cannot be constructed on these platforms
/// (`Poller::new` errors first), so this is unreachable but keeps the
/// crate compiling.
#[cfg(not(unix))]
fn run_reactor(_poller: Poller, _inbox: Arc<Inbox>, _service: Arc<Service>) {}
