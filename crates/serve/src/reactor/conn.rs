//! Per-connection readiness state machine for the reactor.
//!
//! Each connection owns a nonblocking stream, an incremental
//! [`FrameAssembler`] for partial reads, and a pending write buffer for
//! partial writes. The reactor drives it with two entry points —
//! [`Connection::drive_readable`] and [`Connection::drive_writable`] —
//! and the connection reports back whether it wants to keep living:
//!
//! ```text
//!            ┌──────── readable ─────────┐
//!            ▼                           │
//!   ┌─────────────────┐  frame   ┌───────┴───────┐
//!   │ READING         │ ───────▶ │ RESPONDING    │──┐ wbuf drained
//!   │ bytes → asm     │          │ handle+encode │  │ and !closing
//!   └─────────────────┘ ◀─────── └───────┬───────┘◀─┘
//!        │        ▲        more          │ malformed / Shutdown
//!        │ EOF /  │ input                ▼
//!        │ error  │             ┌─────────────────┐
//!        ▼        │             │ FLUSH-CLOSING   │
//!   ┌──────────┐  │             │ drain wbuf,     │
//!   │ CLOSED   │◀─┴─────────────│ ignore input    │
//!   └──────────┘    wbuf empty  └─────────────────┘
//! ```
//!
//! Every byte that arrives here is attacker-controlled; the machine is
//! total — malformed framing or garbage JSON produce an error response
//! and a graceful close, never a panic — and nothing here blocks: all
//! I/O is nonblocking, `WouldBlock` simply parks the state until the
//! next readiness event.
//!
//! AUDIT: total — enforced by `cargo xtask audit` (lint-totality).

use std::io::{self, Write};
use std::net::TcpStream;

use crate::frame::{FrameAssembler, Payload, MAX_FRAME};
use crate::protocol::{encode, Response};
use crate::service::{ConnState, Service};
use crate::shard::ShardSender;

/// Pending-write cap: a peer that stops reading while responses pile up
/// past this bound is dropped instead of buffering without limit. Four
/// maximum-size frames — far beyond anything a working client leaves
/// unread.
const WBUF_CAP: usize = 4 * (MAX_FRAME + 4);

/// Upper bound on bytes read in one `drive_readable` call. A connection
/// that still has input after this much is rescheduled (see
/// [`Drive::Again`]) so one firehose client cannot starve the rest of
/// the reactor's connections.
const MAX_READ_PER_DRIVE: usize = 256 * 1024;

/// What the reactor should do with the connection after a drive call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Drive {
    /// Keep the connection registered and wait for the next event.
    Continue,
    /// The read budget was exhausted with input still pending; drive
    /// again soon (edge-triggered polling will not re-report it).
    Again,
    /// Drop the connection (clean EOF, protocol violation, I/O error,
    /// or a completed shutdown handshake).
    Close,
}

/// One live connection's buffers and flags.
pub struct Connection {
    stream: TcpStream,
    /// Incremental frame assembly over partial reads.
    asm: FrameAssembler,
    /// Encoded responses not yet accepted by the socket.
    wbuf: Vec<u8>,
    /// Prefix of `wbuf` already written.
    wpos: usize,
    /// Set after a framing violation or shutdown handshake: stop
    /// consuming input, flush what is queued, then close.
    closing: bool,
    /// Protocol state: `HELLO` handshake progress plus any snapshot
    /// pinned by a paged transfer. Lives here (not with the
    /// `ShardSender`) because one sender is shared by every connection
    /// on a reactor thread.
    state: ConnState,
}

impl Connection {
    /// Wrap an accepted stream (already set nonblocking by the reactor).
    pub fn new(stream: TcpStream) -> Self {
        Self {
            stream,
            asm: FrameAssembler::new(),
            wbuf: Vec::new(),
            wpos: 0,
            closing: false,
            state: ConnState::new(),
        }
    }

    /// The underlying stream (for readiness registration).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }

    /// Read everything available (up to the fairness budget), decode
    /// and handle complete frames, and flush responses.
    pub fn drive_readable(&mut self, service: &Service, sender: &mut ShardSender) -> Drive {
        if self.closing {
            return self.flush();
        }
        let mut consumed = 0usize;
        let mut saw_eof = false;
        while consumed < MAX_READ_PER_DRIVE {
            // Bytes land directly in the assembler's buffer — no
            // intermediate scratch copy on the hot path.
            match self.asm.fill_from(&mut self.stream) {
                Ok(0) => {
                    saw_eof = true;
                    break;
                }
                Ok(n) => consumed += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Drive::Close,
            }
        }
        let budget_spent = consumed >= MAX_READ_PER_DRIVE;

        // Decode and answer every complete frame buffered so far.
        loop {
            match self.asm.next_frame() {
                Ok(Some(payload)) => {
                    let (response, close) =
                        service.serve_frame(&payload, &mut self.state, sender);
                    if !self.queue_payload(&response) {
                        return Drive::Close;
                    }
                    if close {
                        self.closing = true;
                        break;
                    }
                }
                Ok(None) => break,
                Err(_) => {
                    // Framing violation: resync is impossible. Answer if
                    // the socket still drains, then close.
                    let resp = Response::Error {
                        message: "malformed frame".into(),
                    };
                    let _ = self.queue_payload(&Payload::Json(encode(&resp)));
                    self.closing = true;
                    break;
                }
            }
        }

        match self.flush() {
            Drive::Close => Drive::Close,
            _ if saw_eof => Drive::Close,
            _ if budget_spent && !self.closing => Drive::Again,
            d => d,
        }
    }

    /// The socket became writable again: flush pending responses.
    pub fn drive_writable(&mut self) -> Drive {
        self.flush()
    }

    /// Frame and queue one already-encoded response payload (JSON or
    /// BIN1); `false` if it exceeds the frame cap or the peer has
    /// fallen pathologically behind.
    fn queue_payload(&mut self, payload: &Payload) -> bool {
        let bytes = payload.bytes();
        if bytes.len() > MAX_FRAME {
            return false;
        }
        if self.wbuf.len() - self.wpos + 4 + bytes.len() > WBUF_CAP {
            return false;
        }
        self.wbuf
            .extend_from_slice(&(bytes.len() as u32).to_le_bytes());
        self.wbuf.extend_from_slice(bytes);
        true
    }

    /// Write as much of `wbuf` as the socket accepts.
    fn flush(&mut self) -> Drive {
        while self.wpos < self.wbuf.len() {
            let pending = self.wbuf.get(self.wpos..).unwrap_or(&[]);
            match self.stream.write(pending) {
                Ok(0) => return Drive::Close,
                Ok(n) => self.wpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => return Drive::Close,
            }
        }
        if self.wpos == self.wbuf.len() {
            self.wbuf.clear();
            self.wpos = 0;
            if self.closing {
                return Drive::Close;
            }
        }
        Drive::Continue
    }
}
