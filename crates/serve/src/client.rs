//! A blocking client for the framed protocol.

use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

use cots_core::{CotsError, CounterEntry, Result, ServiceReport};

use crate::frame::{read_frame, write_frame};
use crate::protocol::{decode, encode, QueryReq, QueryStamp, Request, Response, PROTO_VERSION};

/// One connection to a `cots-serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:4040`) and complete the
    /// mandatory `HELLO` handshake. A version rejection surfaces as an
    /// [`io::Error`] naming both versions.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let mut client = Self::connect_raw(addr)?;
        client.hello().map_err(io::Error::other)?;
        Ok(client)
    }

    /// Open the TCP connection *without* sending `HELLO` — for tests of
    /// the handshake itself and for legacy-client simulations. Any
    /// operation sent before [`Client::hello`] succeeds is answered
    /// with `UNSUPPORTED_VERSION` and the server closes the connection.
    pub fn connect_raw(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
        })
    }

    /// Perform the `HELLO` handshake, returning the server's protocol
    /// version and feature flags.
    pub fn hello(&mut self) -> Result<(u32, Vec<String>)> {
        match self.call(&Request::Hello {
            proto_version: PROTO_VERSION,
            features: Vec::new(),
        })? {
            Response::HelloAck {
                proto_version,
                features,
            } => Ok((proto_version, features)),
            Response::UnsupportedVersion {
                supported,
                requested,
            } => Err(CotsError::Protocol(format!(
                "server rejected protocol version {requested} (it supports up to {supported})"
            ))),
            other => Err(CotsError::Protocol(format!(
                "unexpected handshake response: {other:?}"
            ))),
        }
    }

    /// Set the read timeout for responses (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Send one request without waiting for its response (pipelining).
    pub fn send(&mut self, request: &Request) -> Result<()> {
        write_frame(&mut self.writer, &encode(request))?;
        Ok(())
    }

    /// Receive the next response in FIFO order.
    pub fn recv(&mut self) -> Result<Response> {
        match read_frame(&mut self.reader)? {
            Some(payload) => decode(&payload),
            None => Err(CotsError::Protocol(
                "connection closed mid-conversation".into(),
            )),
        }
    }

    /// Send a request and wait for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Ingest a batch, retrying with backoff while the server reports
    /// `OVERLOADED`. Returns the number of retries taken.
    pub fn ingest(&mut self, keys: &[u64]) -> Result<u64> {
        let request = Request::Ingest {
            keys: keys.to_vec(),
        };
        let mut retries = 0;
        loop {
            match self.call(&request)? {
                Response::IngestAck { enqueued } => {
                    if enqueued != keys.len() as u64 {
                        return Err(CotsError::Protocol(format!(
                            "acked {enqueued} of {} keys",
                            keys.len()
                        )));
                    }
                    return Ok(retries);
                }
                Response::Overloaded => {
                    retries += 1;
                    // Linear backoff capped at 5 ms.
                    std::thread::sleep(Duration::from_micros((50 * retries).min(5_000)));
                }
                other => {
                    return Err(CotsError::Protocol(format!(
                        "unexpected ingest response: {other:?}"
                    )))
                }
            }
        }
    }

    /// Service statistics.
    pub fn stats(&mut self) -> Result<ServiceReport> {
        match self.call(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(CotsError::Protocol(format!(
                "unexpected stats response: {other:?}"
            ))),
        }
    }

    /// One query, unwrapped to `(entries, total, stamp)`.
    pub fn query(&mut self, q: QueryReq) -> Result<(Vec<CounterEntry<u64>>, u64, QueryStamp)> {
        match self.call(&Request::Query(q))? {
            Response::Answer {
                entries,
                total,
                stamp,
            } => Ok((entries, total, stamp)),
            Response::Error { message } => Err(CotsError::Protocol(message)),
            other => Err(CotsError::Protocol(format!(
                "unexpected query response: {other:?}"
            ))),
        }
    }

    /// Force a durable checkpoint now; returns `(watermark, total,
    /// bytes)` of the committed checkpoint file. Errors if the server
    /// runs without a data directory.
    pub fn checkpoint(&mut self) -> Result<(u64, u64, u64)> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpointed {
                watermark,
                total,
                bytes,
            } => Ok((watermark, total, bytes)),
            Response::Error { message } => Err(CotsError::Protocol(message)),
            other => Err(CotsError::Protocol(format!(
                "unexpected checkpoint response: {other:?}"
            ))),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(CotsError::Protocol(format!(
                "unexpected shutdown response: {other:?}"
            ))),
        }
    }
}
