//! A blocking client for the framed protocol.
//!
//! The client always speaks JSON for control and query operations. At
//! `HELLO` time it advertises the `"bin"` feature; when the server
//! advertises it back, the bulk operations (`INGEST`, `REPL_BATCH`,
//! `SNAPSHOT_PAGE`) switch to the BIN1 binary encoding automatically
//! (see [`crate::bin1`]). [`Client::set_binary`] forces JSON back on
//! for differential testing, as does `COTS_WIRE=json` in the
//! environment; responses of either encoding are always accepted, so a
//! JSON `Error` answering a binary request never desynchronizes the
//! conversation.

use std::io::{self, BufReader, BufWriter};
use std::net::TcpStream;
use std::time::Duration;

use cots_core::{CotsError, CounterEntry, Result, ServiceReport};

use crate::bin1;
use crate::frame::{read_frame, write_payload, Payload};
use crate::protocol::{decode, encode, QueryReq, QueryStamp, Request, Response, PROTO_VERSION};

/// One connection to a `cots-serve` instance.
pub struct Client {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
    /// The server advertised `"bin"` in its `HELLO_ACK`.
    bin_negotiated: bool,
    /// BIN1 is negotiated *and* enabled (see [`Client::set_binary`]).
    bin: bool,
}

impl Client {
    /// Connect to `addr` (e.g. `127.0.0.1:4040`) and complete the
    /// mandatory `HELLO` handshake. A version rejection surfaces as an
    /// [`io::Error`] naming both versions.
    pub fn connect(addr: &str) -> io::Result<Self> {
        let mut client = Self::connect_raw(addr)?;
        client.hello().map_err(io::Error::other)?;
        Ok(client)
    }

    /// Open the TCP connection *without* sending `HELLO` — for tests of
    /// the handshake itself and for legacy-client simulations. Any
    /// operation sent before [`Client::hello`] succeeds is answered
    /// with `UNSUPPORTED_VERSION` and the server closes the connection.
    pub fn connect_raw(addr: &str) -> io::Result<Self> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Self {
            reader,
            writer: BufWriter::new(stream),
            bin_negotiated: false,
            bin: false,
        })
    }

    /// Perform the `HELLO` handshake, returning the server's protocol
    /// version and feature flags. Advertises the `"bin"` feature and
    /// switches the bulk operations to BIN1 when the server advertises
    /// it back (unless `COTS_WIRE=json` is set in the environment).
    pub fn hello(&mut self) -> Result<(u32, Vec<String>)> {
        match self.call(&Request::Hello {
            proto_version: PROTO_VERSION,
            features: vec!["bin".to_string()],
        })? {
            Response::HelloAck {
                proto_version,
                features,
            } => {
                self.bin_negotiated = features.iter().any(|f| f == "bin");
                let force_json = std::env::var_os("COTS_WIRE").is_some_and(|v| v == "json");
                self.bin = self.bin_negotiated && !force_json;
                Ok((proto_version, features))
            }
            Response::UnsupportedVersion {
                supported,
                requested,
            } => Err(CotsError::Protocol(format!(
                "server rejected protocol version {requested} (it supports up to {supported})"
            ))),
            other => Err(CotsError::Protocol(format!(
                "unexpected handshake response: {other:?}"
            ))),
        }
    }

    /// Whether the bulk operations currently go out as BIN1.
    pub fn is_binary(&self) -> bool {
        self.bin
    }

    /// Force the wire encoding for bulk operations: `false` always
    /// falls back to JSON; `true` takes effect only if the server
    /// negotiated `"bin"`. Returns the effective state.
    pub fn set_binary(&mut self, on: bool) -> bool {
        self.bin = on && self.bin_negotiated;
        self.bin
    }

    /// Set the read timeout for responses (`None` blocks forever).
    pub fn set_timeout(&mut self, timeout: Option<Duration>) -> io::Result<()> {
        self.reader.get_ref().set_read_timeout(timeout)
    }

    /// Encode `request` for this connection: BIN1 when negotiated and
    /// the operation has a binary form, JSON otherwise.
    pub fn encode_request(&self, request: &Request) -> Payload {
        if self.bin {
            if let Some(bytes) = bin1::encode_request(request) {
                return Payload::Bin(bytes);
            }
        }
        Payload::Json(encode(request))
    }

    /// Encode one `INGEST` for this connection. The BIN1 path goes
    /// straight from the key slice to wire bytes — no `Request` clone —
    /// and either payload can be resent verbatim on `OVERLOADED`.
    pub fn encode_ingest(&self, keys: &[u64]) -> Payload {
        if self.bin {
            Payload::Bin(bin1::encode_ingest(keys))
        } else {
            Payload::Json(encode(&Request::Ingest {
                keys: keys.to_vec(),
            }))
        }
    }

    /// Send one request without waiting for its response (pipelining).
    pub fn send(&mut self, request: &Request) -> Result<()> {
        let payload = self.encode_request(request);
        self.send_payload(&payload)
    }

    /// Send one already-encoded payload (loadgen uses this to time
    /// encoding separately from the round trip).
    pub fn send_payload(&mut self, payload: &Payload) -> Result<()> {
        write_payload(&mut self.writer, payload)?;
        Ok(())
    }

    /// Receive the next raw response payload in FIFO order.
    pub fn recv_payload(&mut self) -> Result<Payload> {
        match read_frame(&mut self.reader)? {
            Some(payload) => Ok(payload),
            None => Err(CotsError::Protocol(
                "connection closed mid-conversation".into(),
            )),
        }
    }

    /// Decode a response payload of either encoding.
    pub fn decode_response(payload: &Payload) -> Result<Response> {
        match payload {
            Payload::Json(text) => decode(text),
            Payload::Bin(bytes) => {
                bin1::decode_response(bytes).map_err(|e| CotsError::Protocol(e.to_string()))
            }
        }
    }

    /// Receive the next response in FIFO order (either encoding).
    pub fn recv(&mut self) -> Result<Response> {
        let payload = self.recv_payload()?;
        Self::decode_response(&payload)
    }

    /// Send a request and wait for its response.
    pub fn call(&mut self, request: &Request) -> Result<Response> {
        self.send(request)?;
        self.recv()
    }

    /// Ingest a batch, retrying with backoff while the server reports
    /// `OVERLOADED`. Returns the number of retries taken.
    pub fn ingest(&mut self, keys: &[u64]) -> Result<u64> {
        // Encode once, up front; overload retries resend the same
        // buffer without re-encoding.
        let payload = self.encode_ingest(keys);
        let mut retries = 0;
        loop {
            self.send_payload(&payload)?;
            match self.recv()? {
                Response::IngestAck { enqueued } => {
                    if enqueued != keys.len() as u64 {
                        return Err(CotsError::Protocol(format!(
                            "acked {enqueued} of {} keys",
                            keys.len()
                        )));
                    }
                    return Ok(retries);
                }
                Response::Overloaded => {
                    retries += 1;
                    // Linear backoff capped at 5 ms.
                    std::thread::sleep(Duration::from_micros((50 * retries).min(5_000)));
                }
                other => {
                    return Err(CotsError::Protocol(format!(
                        "unexpected ingest response: {other:?}"
                    )))
                }
            }
        }
    }

    /// Service statistics.
    pub fn stats(&mut self) -> Result<ServiceReport> {
        match self.call(&Request::Stats)? {
            Response::Stats(report) => Ok(report),
            other => Err(CotsError::Protocol(format!(
                "unexpected stats response: {other:?}"
            ))),
        }
    }

    /// One query, unwrapped to `(entries, total, stamp)`.
    pub fn query(&mut self, q: QueryReq) -> Result<(Vec<CounterEntry<u64>>, u64, QueryStamp)> {
        match self.call(&Request::Query(q))? {
            Response::Answer {
                entries,
                total,
                stamp,
            } => Ok((entries, total, stamp)),
            Response::Error { message } => Err(CotsError::Protocol(message)),
            other => Err(CotsError::Protocol(format!(
                "unexpected query response: {other:?}"
            ))),
        }
    }

    /// Force a durable checkpoint now; returns `(watermark, total,
    /// bytes)` of the committed checkpoint file. Errors if the server
    /// runs without a data directory.
    pub fn checkpoint(&mut self) -> Result<(u64, u64, u64)> {
        match self.call(&Request::Checkpoint)? {
            Response::Checkpointed {
                watermark,
                total,
                bytes,
            } => Ok((watermark, total, bytes)),
            Response::Error { message } => Err(CotsError::Protocol(message)),
            other => Err(CotsError::Protocol(format!(
                "unexpected checkpoint response: {other:?}"
            ))),
        }
    }

    /// Ask the server to shut down gracefully.
    pub fn shutdown(&mut self) -> Result<()> {
        match self.call(&Request::Shutdown)? {
            Response::ShuttingDown => Ok(()),
            other => Err(CotsError::Protocol(format!(
                "unexpected shutdown response: {other:?}"
            ))),
        }
    }
}
