//! Concurrency stress for the naive engines — they are baselines, but they
//! must be *correct* baselines, or the figures measure bugs instead of
//! designs.

use std::sync::Arc;

use cots_core::{ConcurrentCounter, QueryableSummary, SummaryConfig};
use cots_datagen::{ExactCounter, StreamSpec};
use cots_naive::{
    HybridSpaceSaving, IndependentSpaceSaving, LockKind, MergeStrategy, SharedSpaceSaving,
};

fn conserved(snapshot: &cots_core::Snapshot<u64>, n: u64, label: &str) {
    let sum: u64 = snapshot.entries().iter().map(|e| e.count).sum();
    assert_eq!(sum, n, "{label}: count conservation");
}

#[test]
fn shared_spinlock_under_heavy_churn() {
    let engine = Arc::new(
        SharedSpaceSaving::<u64>::new(SummaryConfig::with_capacity(16).unwrap(), LockKind::Spin)
            .unwrap(),
    );
    let threads = 6;
    let per = 4_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = engine.clone();
            s.spawn(move || {
                let mut x = 0xABCDEFu64 ^ (t as u64);
                for _ in 0..per {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                    let item = if x & 3 == 0 {
                        x % 4
                    } else {
                        10_000 + (x % 3_000)
                    };
                    engine.process(item);
                }
            });
        }
    });
    assert_eq!(engine.processed(), threads as u64 * per);
    conserved(&engine.snapshot(), threads as u64 * per, "shared-spin");
}

#[test]
fn shared_mutex_overwrite_deferral_converges() {
    // All threads hammer a tiny alphabet that exactly fills the structure,
    // then shift to a disjoint alphabet — every post-shift element must
    // overwrite while the old elements are hot.
    let engine = Arc::new(
        SharedSpaceSaving::<u64>::new(SummaryConfig::with_capacity(4).unwrap(), LockKind::Mutex)
            .unwrap(),
    );
    let threads = 4;
    let per = 3_000u64;
    std::thread::scope(|s| {
        for _t in 0..threads {
            let engine = engine.clone();
            s.spawn(move || {
                // Every thread processes the same keys, maximizing the
                // element-level serialization and overwrite contention.
                for i in 0..per {
                    let item = if i < per / 2 { i % 4 } else { 100 + (i % 8) };
                    engine.process(item);
                }
            });
        }
    });
    let n = threads as u64 * per;
    assert_eq!(engine.processed(), n);
    conserved(&engine.snapshot(), n, "shared-deferral");
    assert!(engine.work().overwrites > 0);
}

#[test]
fn independent_hierarchical_with_many_threads_and_small_batches() {
    let stream = StreamSpec::zipf(60_000, 3_000, 2.0, 31).generate();
    let truth = ExactCounter::from_stream(&stream);
    let engine = IndependentSpaceSaving {
        config: SummaryConfig::with_capacity(128).unwrap(),
        strategy: MergeStrategy::Hierarchical,
        merge_every: Some(1_000), // 60 merges
    };
    for threads in [2usize, 5, 8, 13] {
        let out = engine.run(&stream, threads, false).unwrap();
        assert_eq!(out.snapshot.total(), stream.len() as u64, "x{threads}");
        assert!(out.merges >= 50, "x{threads}: merges {}", out.merges);
        for e in out.snapshot.entries() {
            let t = truth.count(&e.item);
            assert!(
                e.count >= t && e.guaranteed() <= t,
                "x{threads} item {}",
                e.item
            );
        }
    }
}

#[test]
fn hybrid_concurrent_weighted_flushes_conserve() {
    let engine = Arc::new(
        HybridSpaceSaving::<u64>::new(
            SummaryConfig::with_capacity(64).unwrap(),
            LockKind::Mutex,
            32,
            256,
        )
        .unwrap(),
    );
    let threads = 5;
    let per = 6_000u64;
    std::thread::scope(|s| {
        for t in 0..threads {
            let engine = engine.clone();
            s.spawn(move || {
                let mut cache = engine.new_cache();
                let mut x = 77u64 ^ ((t as u64) << 20);
                for i in 0..per {
                    // Mix: skewed hot keys + churn.
                    let item = if i % 3 != 0 {
                        x % 16
                    } else {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        5_000 + (x % 2_000)
                    };
                    engine.process_cached(&mut cache, item);
                }
                engine.flush(&mut cache);
            });
        }
    });
    let n = threads as u64 * per;
    assert_eq!(engine.shared().processed(), n);
    conserved(&engine.snapshot(), n, "hybrid");
    // Hot keys (≥ per/3 each per thread ⇒ ≥ 10k total/16…) dominate the
    // eviction floor and must be monitored.
    let snap = engine.snapshot();
    for k in 0..16u64 {
        assert!(snap.get(&k).is_some(), "hot key {k} missing");
    }
}

#[test]
fn shared_readers_run_against_writers() {
    let engine = Arc::new(
        SharedSpaceSaving::<u64>::new(SummaryConfig::with_capacity(64).unwrap(), LockKind::Mutex)
            .unwrap(),
    );
    let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    std::thread::scope(|s| {
        for t in 0..3 {
            let engine = engine.clone();
            s.spawn(move || {
                for i in 0..20_000u64 {
                    engine.process((i + t as u64) % 200);
                }
            });
        }
        let reader_engine = engine.clone();
        let reader_stop = stop.clone();
        s.spawn(move || {
            while !reader_stop.load(std::sync::atomic::Ordering::Relaxed) {
                let snap = reader_engine.snapshot();
                assert!(snap.len() <= 64);
                for e in snap.entries() {
                    assert!(e.error <= e.count);
                }
                let _ = reader_engine.estimate(&5);
            }
        });
        for t in 0..3 {
            let engine = engine.clone();
            s.spawn(move || {
                for i in 0..20_000u64 {
                    engine.process((i * 7 + t as u64) % 200);
                }
            });
        }
        // Writers finish; stop the reader.
        let stop = stop.clone();
        s.spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(300));
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
        });
    });
    conserved(&engine.snapshot(), 120_000, "shared-readers");
}
