//! Lock flavours for the naive shared design.
//!
//! The paper evaluates the shared structure with pthread mutexes and notes
//! that "the performance was worse with Spin Locks (busy-wait) as not only
//! were the threads waiting for shared resources, they were busy-waiting,
//! and hence were also contending for the CPU" (§4.3). [`NaiveLock`] wraps
//! either flavour behind one type so the engine can be built with both and
//! the comparison re-run.
//!
//! Acquisitions optionally record into a [`WorkTally`]: one
//! `lock_acquisitions` per lock, one `lock_contentions` when the fast-path
//! `try_lock` failed and the thread had to wait.

use std::cell::UnsafeCell;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicBool, Ordering};

use cots_core::report::WorkTally;
use parking_lot::{Mutex, MutexGuard};

/// Which lock implementation a shared engine uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// Blocking mutex (parking_lot; the analogue of the paper's pthread
    /// mutex runs).
    Mutex,
    /// Test-and-test-and-set spin lock (the paper's busy-wait comparison).
    Spin,
}

/// A mutual-exclusion wrapper that is either a parking mutex or a spin lock.
#[derive(Debug)]
pub enum NaiveLock<T> {
    /// Parking mutex.
    Mutex(Mutex<T>),
    /// Spin lock.
    Spin(SpinLock<T>),
}

impl<T> NaiveLock<T> {
    /// Create a lock of the requested kind.
    pub fn new(kind: LockKind, value: T) -> Self {
        match kind {
            LockKind::Mutex => NaiveLock::Mutex(Mutex::new(value)),
            LockKind::Spin => NaiveLock::Spin(SpinLock::new(value)),
        }
    }

    /// Acquire, blocking (or spinning) until available.
    pub fn lock(&self) -> NaiveGuard<'_, T> {
        match self {
            NaiveLock::Mutex(m) => NaiveGuard::Mutex(m.lock()),
            NaiveLock::Spin(s) => NaiveGuard::Spin(s.lock()),
        }
    }

    /// Acquire without waiting.
    pub fn try_lock(&self) -> Option<NaiveGuard<'_, T>> {
        match self {
            NaiveLock::Mutex(m) => m.try_lock().map(NaiveGuard::Mutex),
            NaiveLock::Spin(s) => s.try_lock().map(NaiveGuard::Spin),
        }
    }

    /// Acquire while recording acquisition/contention counts.
    pub fn lock_counted(&self, tally: &WorkTally) -> NaiveGuard<'_, T> {
        tally.lock_acquisitions(1);
        if let Some(g) = self.try_lock() {
            return g;
        }
        tally.lock_contentions(1);
        self.lock()
    }
}

/// Guard for [`NaiveLock`].
pub enum NaiveGuard<'a, T> {
    /// Guard of the mutex flavour.
    Mutex(MutexGuard<'a, T>),
    /// Guard of the spin flavour.
    Spin(SpinGuard<'a, T>),
}

impl<T> Deref for NaiveGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        match self {
            NaiveGuard::Mutex(g) => g,
            NaiveGuard::Spin(g) => g,
        }
    }
}

impl<T> DerefMut for NaiveGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        match self {
            NaiveGuard::Mutex(g) => &mut *g,
            NaiveGuard::Spin(g) => &mut *g,
        }
    }
}

/// A test-and-test-and-set spin lock.
///
/// Deliberately primitive — this is the baseline whose pathologies the
/// paper measures, not a production lock. It does spin with exponential
/// yielding so a single-core host can still make progress.
#[derive(Debug)]
pub struct SpinLock<T> {
    locked: AtomicBool,
    value: UnsafeCell<T>,
}

// SAFETY: the lock protocol guarantees exclusive access to `value` while a
// guard exists; `T: Send` is required to move values across the lock.
unsafe impl<T: Send> Send for SpinLock<T> {}
unsafe impl<T: Send> Sync for SpinLock<T> {}

impl<T> SpinLock<T> {
    /// New unlocked lock.
    pub fn new(value: T) -> Self {
        Self {
            locked: AtomicBool::new(false),
            value: UnsafeCell::new(value),
        }
    }

    /// Spin until acquired.
    pub fn lock(&self) -> SpinGuard<'_, T> {
        let mut spins = 0u32;
        loop {
            if let Some(g) = self.try_lock() {
                return g;
            }
            // Test-and-test-and-set: wait for the flag to look free before
            // attempting the atomic swap again.
            while self.locked.load(Ordering::Relaxed) {
                spins += 1;
                if spins > 64 {
                    // On an oversubscribed (or single-core) host the owner
                    // cannot run unless we yield.
                    std::thread::yield_now();
                } else {
                    std::hint::spin_loop();
                }
            }
        }
    }

    /// Acquire without waiting.
    pub fn try_lock(&self) -> Option<SpinGuard<'_, T>> {
        if self
            .locked
            .compare_exchange(false, true, Ordering::Acquire, Ordering::Relaxed)
            .is_ok()
        {
            Some(SpinGuard { lock: self })
        } else {
            None
        }
    }
}

/// Guard for [`SpinLock`].
pub struct SpinGuard<'a, T> {
    lock: &'a SpinLock<T>,
}

impl<T> Deref for SpinGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: guard existence implies exclusive ownership.
        unsafe { &*self.lock.value.get() }
    }
}

impl<T> DerefMut for SpinGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: guard existence implies exclusive ownership.
        unsafe { &mut *self.lock.value.get() }
    }
}

impl<T> Drop for SpinGuard<'_, T> {
    fn drop(&mut self) {
        self.lock.locked.store(false, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn both_kinds_provide_mutual_exclusion() {
        for kind in [LockKind::Mutex, LockKind::Spin] {
            let lock = Arc::new(NaiveLock::new(kind, 0u64));
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let lock = lock.clone();
                    std::thread::spawn(move || {
                        for _ in 0..10_000 {
                            *lock.lock() += 1;
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(*lock.lock(), 40_000, "kind {kind:?}");
        }
    }

    #[test]
    fn try_lock_fails_while_held() {
        let lock = NaiveLock::new(LockKind::Spin, 7u32);
        let g = lock.lock();
        assert!(lock.try_lock().is_none());
        drop(g);
        assert!(lock.try_lock().is_some());
    }

    #[test]
    fn counted_lock_records_contention() {
        let tally = Arc::new(WorkTally::new());
        let lock = Arc::new(NaiveLock::new(LockKind::Mutex, ()));
        // Uncontended: one acquisition, no contention.
        drop(lock.lock_counted(&tally));
        let s = tally.snapshot();
        assert_eq!(s.lock_acquisitions, 1);
        assert_eq!(s.lock_contentions, 0);
        // Contended: hold the lock in another thread.
        let l2 = lock.clone();
        let t2 = tally.clone();
        let g = lock.lock();
        let h = std::thread::spawn(move || {
            let _g = l2.lock_counted(&t2);
        });
        // Give the thread time to hit the contended path.
        std::thread::sleep(std::time::Duration::from_millis(30));
        drop(g);
        h.join().unwrap();
        let s = tally.snapshot();
        assert_eq!(s.lock_acquisitions, 2);
        assert_eq!(s.lock_contentions, 1);
    }

    #[test]
    fn spin_guard_releases_on_drop() {
        let lock = SpinLock::new(vec![1, 2]);
        {
            let mut g = lock.lock();
            g.push(3);
        }
        assert_eq!(*lock.lock(), vec![1, 2, 3]);
    }
}
