//! # cots-naive
//!
//! The two naive parallelization schemes the paper analyzes (§4) plus the
//! hybrid design it argues against (§4.4):
//!
//! * [`independent::IndependentSpaceSaving`] — shared-nothing: one private
//!   Space Saving per thread, merged (serially or hierarchically) at every
//!   query point. Scales in counting, collapses in merging (Figs. 3(a), 4,
//!   6).
//! * [`shared::SharedSpaceSaving`] — one fully shared summary behind
//!   element-level and bucket-level locks (mutex or spin). Collapses under
//!   contention (Figs. 3(b), 5, 7).
//! * [`hybrid::HybridSpaceSaving`] — per-thread counter caches in front of
//!   the shared structure; degenerates toward one parent or the other at
//!   the skew extremes, as §4.4 predicts.
//!
//! These engines exist to be measured, not used: the `cots` crate is the
//! framework the paper actually proposes.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod hybrid;
pub mod independent;
pub mod lock;
pub mod runner;
pub mod shared;

pub use hybrid::HybridSpaceSaving;
pub use independent::{IndependentSpaceSaving, MergeStrategy};
pub use lock::{LockKind, NaiveLock, SpinLock};
pub use shared::SharedSpaceSaving;
