//! The naive **Independent Structures** design (paper §4.1).
//!
//! Shared-nothing: each thread runs a private sequential Space Saving over
//! its partition of the stream. To answer a query the local structures must
//! be merged; the paper poses a query (hence a merge) every 50 000 elements,
//! and shows that the merge cost grows with the thread count and kills the
//! design (Figures 3(a), 4 and 6).
//!
//! Two merge strategies are implemented:
//!
//! * **Serial** — after a barrier, thread 0 merges every local snapshot.
//! * **Hierarchical** — a binary merge tree: at level `l`, thread `i` (with
//!   `i mod 2^(l+1) == 0`) merges its partial result with that of thread
//!   `i + 2^l`, with a barrier between levels. The paper notes this is not
//!   faster in practice because of the per-level synchronization — which
//!   this implementation reproduces.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Barrier, Mutex};
use std::time::Instant;

use cots_core::merge::merge_snapshots;
use cots_core::report::WorkTally;
use cots_core::{
    CotsError, Element, FrequencyCounter, QueryableSummary, Result, RunStats, Snapshot,
    SummaryConfig,
};
use cots_profiling::{Phase, PhaseTimer, PhaseTimes};
use cots_sequential::SpaceSaving;

/// How local summaries are combined at a query point.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MergeStrategy {
    /// One thread merges all local snapshots.
    Serial,
    /// Binary merge tree with a barrier per level.
    Hierarchical,
}

/// Configuration and driver for the independent-structures engine.
#[derive(Debug, Clone, Copy)]
pub struct IndependentSpaceSaving {
    /// Counter budget of each local structure (and of the merged result).
    pub config: SummaryConfig,
    /// Merge strategy.
    pub strategy: MergeStrategy,
    /// Global element period between queries/merges (the paper uses
    /// 50 000). `None` merges only once, at the end.
    pub merge_every: Option<u64>,
}

/// Result of an independent-structures run.
#[derive(Debug)]
pub struct IndependentOutcome<K: Element> {
    /// Wall-clock stats and work counters.
    pub stats: RunStats,
    /// The final merged summary.
    pub snapshot: Snapshot<K>,
    /// Per-thread phase times (Counting vs Merge) when profiling was on.
    pub phase_times: Vec<PhaseTimes>,
    /// Number of merge events executed.
    pub merges: u64,
}

impl IndependentSpaceSaving {
    /// Engine with the paper's defaults: merge every 50 000 elements,
    /// serial merge.
    pub fn paper_default(config: SummaryConfig) -> Self {
        Self {
            config,
            strategy: MergeStrategy::Serial,
            merge_every: Some(50_000),
        }
    }

    /// Run over `stream` with `threads` workers.
    ///
    /// Each worker counts a contiguous chunk; every `merge_every` global
    /// elements all workers synchronize and merge. Returns the final merged
    /// snapshot and per-thread phase breakdowns.
    pub fn run<K: Element>(
        &self,
        stream: &[K],
        threads: usize,
        profile: bool,
    ) -> Result<IndependentOutcome<K>> {
        if threads == 0 {
            return Err(CotsError::InvalidRun("threads must be positive".into()));
        }
        if stream.is_empty() {
            return Err(CotsError::InvalidRun("stream must be non-empty".into()));
        }
        let tally = WorkTally::new();
        let chunks = chunked(stream, threads);
        let max_chunk = chunks.iter().map(|c| c.len()).max().unwrap_or(0);
        // Per-merge-round batch per thread: merge_every global elements
        // spread over the workers. All threads execute the same number of
        // rounds (computed from the longest chunk) so the barriers line up.
        let batch = self
            .merge_every
            .map(|m| ((m as usize) / threads).max(1))
            .unwrap_or(max_chunk)
            .max(1);
        let rounds = max_chunk.div_ceil(batch).max(1);
        let barrier = Barrier::new(threads);
        // Merge slots: each thread deposits its local snapshot here.
        let slots: Vec<Mutex<Option<Snapshot<K>>>> =
            (0..threads).map(|_| Mutex::new(None)).collect();
        // The merged "global structure" the queries read.
        let global: Mutex<Option<Snapshot<K>>> = Mutex::new(None);
        let merges = AtomicU64::new(0);
        let phase_slots: Vec<Mutex<PhaseTimes>> = (0..threads)
            .map(|_| Mutex::new(PhaseTimes::default()))
            .collect();

        let capacity = self.config.capacity;
        let strategy = self.strategy;
        let start = Instant::now();
        std::thread::scope(|scope| {
            for (tid, chunk) in chunks.iter().enumerate() {
                let barrier = &barrier;
                let slots = &slots;
                let global = &global;
                let merges = &merges;
                let tally = &tally;
                let phase_slots = &phase_slots;
                let config = self.config;
                scope.spawn(move || {
                    let mut timer = if profile {
                        PhaseTimer::enabled()
                    } else {
                        PhaseTimer::disabled()
                    };
                    let mut local = SpaceSaving::<K>::new(config);
                    for round in 0..rounds {
                        let lo = (round * batch).min(chunk.len());
                        let hi = ((round + 1) * batch).min(chunk.len());
                        let slice = &chunk[lo..hi];
                        timer.time(Phase::Counting, || {
                            local.process_slice(slice);
                        });
                        tally.elements(slice.len() as u64);
                        tally.summary_ops(slice.len() as u64);
                        tally.boundary_crossings(slice.len() as u64);
                        // Merge round: all threads deposit, then combine.
                        Self::merge_round(
                            strategy, capacity, tid, threads, &local, barrier, slots, global,
                            merges, tally, &mut timer,
                        );
                    }
                    *phase_slots[tid].lock().unwrap() = timer.into_times();
                });
            }
        });
        let elapsed = start.elapsed();

        let snapshot = global
            .into_inner()
            .unwrap()
            .expect("final merge always runs");
        let phase_times: Vec<PhaseTimes> = phase_slots
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect();
        let merges = merges.load(Ordering::Relaxed);
        let stats = RunStats {
            engine: format!(
                "independent-{}",
                match self.strategy {
                    MergeStrategy::Serial => "serial",
                    MergeStrategy::Hierarchical => "hierarchical",
                }
            ),
            threads,
            elements: stream.len() as u64,
            elapsed,
            work: tally.snapshot(),
        };
        Ok(IndependentOutcome {
            stats,
            snapshot,
            phase_times,
            merges,
        })
    }

    /// One synchronized merge round.
    #[allow(clippy::too_many_arguments)]
    fn merge_round<K: Element>(
        strategy: MergeStrategy,
        capacity: usize,
        tid: usize,
        threads: usize,
        local: &SpaceSaving<K>,
        barrier: &Barrier,
        slots: &[Mutex<Option<Snapshot<K>>>],
        global: &Mutex<Option<Snapshot<K>>>,
        merges: &AtomicU64,
        tally: &WorkTally,
        timer: &mut PhaseTimer,
    ) {
        // Export the local snapshot (part of the merge cost).
        timer.time(Phase::Merge, || {
            *slots[tid].lock().unwrap() = Some(local.snapshot());
        });
        barrier.wait();
        match strategy {
            MergeStrategy::Serial => {
                if tid == 0 {
                    timer.time(Phase::Merge, || {
                        let snaps: Vec<Snapshot<K>> = slots
                            .iter()
                            .map(|s| s.lock().unwrap().take().expect("deposited above"))
                            .collect();
                        let counters: u64 = snaps.iter().map(|s| s.len() as u64).sum();
                        let merged = merge_snapshots(&snaps, capacity);
                        tally.merges(1);
                        tally.merged_counters(counters);
                        merges.fetch_add(1, Ordering::Relaxed);
                        *global.lock().unwrap() = Some(merged);
                    });
                }
                barrier.wait();
            }
            MergeStrategy::Hierarchical => {
                // ceil(log2(threads)) levels; a barrier between each, which
                // is exactly the per-level synchronization overhead the
                // paper blames for hierarchical not beating serial.
                let mut stride = 1usize;
                while stride < threads {
                    if tid.is_multiple_of(stride * 2) && tid + stride < threads {
                        timer.time(Phase::Merge, || {
                            let mine = slots[tid].lock().unwrap().take().expect("present");
                            let theirs =
                                slots[tid + stride].lock().unwrap().take().expect("present");
                            tally.merged_counters((mine.len() + theirs.len()) as u64);
                            let merged = merge_snapshots(&[mine, theirs], capacity);
                            *slots[tid].lock().unwrap() = Some(merged);
                        });
                    }
                    barrier.wait();
                    stride *= 2;
                }
                if tid == 0 {
                    timer.time(Phase::Merge, || {
                        let merged = slots[0].lock().unwrap().take().expect("root result");
                        tally.merges(1);
                        merges.fetch_add(1, Ordering::Relaxed);
                        *global.lock().unwrap() = Some(merged);
                    });
                }
                barrier.wait();
            }
        }
    }
}

use cots_datagen::partition::chunked;

#[cfg(test)]
mod tests {
    use super::*;
    use cots_datagen::StreamSpec;
    use std::time::Duration;

    fn engine(
        capacity: usize,
        strategy: MergeStrategy,
        merge_every: Option<u64>,
    ) -> IndependentSpaceSaving {
        IndependentSpaceSaving {
            config: SummaryConfig::with_capacity(capacity).unwrap(),
            strategy,
            merge_every,
        }
    }

    #[test]
    fn single_thread_matches_sequential() {
        let stream = StreamSpec::zipf(20_000, 500, 2.0, 1).generate();
        let out = engine(64, MergeStrategy::Serial, None)
            .run(&stream, 1, false)
            .unwrap();
        let mut seq = SpaceSaving::<u64>::new(SummaryConfig::with_capacity(64).unwrap());
        seq.process_slice(&stream);
        let seq_snap = seq.snapshot();
        assert_eq!(out.snapshot.total(), seq_snap.total());
        // Same top elements (merging a single snapshot is the identity).
        assert_eq!(
            out.snapshot
                .top_k(5)
                .iter()
                .map(|e| e.item)
                .collect::<Vec<_>>(),
            seq_snap.top_k(5).iter().map(|e| e.item).collect::<Vec<_>>()
        );
        assert_eq!(out.merges, 1);
    }

    #[test]
    fn totals_conserved_across_threads() {
        let stream = StreamSpec::zipf(30_000, 1000, 1.5, 3).generate();
        for strategy in [MergeStrategy::Serial, MergeStrategy::Hierarchical] {
            for threads in [1usize, 2, 3, 4, 7] {
                let out = engine(128, strategy, Some(10_000))
                    .run(&stream, threads, false)
                    .unwrap();
                assert_eq!(
                    out.snapshot.total(),
                    stream.len() as u64,
                    "{strategy:?} x{threads}"
                );
                assert!(out.merges >= 3, "periodic merges must fire");
                assert!(out.snapshot.len() <= 128);
            }
        }
    }

    #[test]
    fn serial_and_hierarchical_agree_on_heavy_hitters() {
        let stream = StreamSpec::zipf(40_000, 2000, 2.5, 9).generate();
        let a = engine(256, MergeStrategy::Serial, None)
            .run(&stream, 4, false)
            .unwrap();
        let b = engine(256, MergeStrategy::Hierarchical, None)
            .run(&stream, 4, false)
            .unwrap();
        let top_a: Vec<u64> = a.snapshot.top_k(10).iter().map(|e| e.item).collect();
        let top_b: Vec<u64> = b.snapshot.top_k(10).iter().map(|e| e.item).collect();
        // The heavy head must agree even if tie order differs.
        assert_eq!(top_a[..5], top_b[..5]);
    }

    #[test]
    fn merged_bounds_are_sound() {
        let stream = StreamSpec::zipf(25_000, 400, 2.0, 5).generate();
        let truth = cots_datagen::ExactCounter::from_stream(&stream);
        let out = engine(64, MergeStrategy::Serial, Some(5_000))
            .run(&stream, 4, false)
            .unwrap();
        for e in out.snapshot.entries() {
            let t = truth.count(&e.item);
            assert!(
                e.count >= t,
                "count {} < true {} for {}",
                e.count,
                t,
                e.item
            );
            assert!(
                e.guaranteed() <= t,
                "guarantee {} > true {} for {}",
                e.guaranteed(),
                t,
                e.item
            );
        }
    }

    #[test]
    fn profiling_records_counting_and_merge() {
        let stream = StreamSpec::zipf(20_000, 300, 2.0, 2).generate();
        let out = engine(64, MergeStrategy::Serial, Some(2_000))
            .run(&stream, 2, true)
            .unwrap();
        let mut total = PhaseTimes::default();
        for t in &out.phase_times {
            total.merge(t);
        }
        assert!(total.get(Phase::Counting) > Duration::ZERO);
        assert!(total.get(Phase::Merge) > Duration::ZERO);
    }

    #[test]
    fn merge_cost_grows_with_threads() {
        // The Figure-4 effect, asserted on work counters (hardware
        // independent): more threads -> more merged counters examined.
        let stream = StreamSpec::zipf(30_000, 3000, 2.0, 8).generate();
        let few = engine(256, MergeStrategy::Serial, Some(10_000))
            .run(&stream, 2, false)
            .unwrap();
        let many = engine(256, MergeStrategy::Serial, Some(10_000))
            .run(&stream, 8, false)
            .unwrap();
        assert!(
            many.stats.work.merged_counters > few.stats.work.merged_counters,
            "merge volume should grow with threads: {} vs {}",
            many.stats.work.merged_counters,
            few.stats.work.merged_counters
        );
    }

    #[test]
    fn rejects_bad_runs() {
        let e = engine(8, MergeStrategy::Serial, None);
        assert!(e.run::<u64>(&[], 2, false).is_err());
        assert!(e.run(&[1u64], 0, false).is_err());
    }

    #[test]
    fn more_threads_than_elements() {
        let out = engine(8, MergeStrategy::Hierarchical, Some(10))
            .run(&[1u64, 2, 1], 8, false)
            .unwrap();
        assert_eq!(out.snapshot.total(), 3);
        assert_eq!(out.snapshot.get(&1).unwrap().count, 2);
    }
}
