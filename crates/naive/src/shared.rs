//! The naive **Shared Structure** design (paper §4.2).
//!
//! One Stream Summary shared by all threads, with the two levels of
//! synchronization the paper describes:
//!
//! * **Element-level**: a per-entry lock in the hash table; a thread must be
//!   the only one operating on an element, so concurrent threads processing
//!   the same (hot) element serialize here — the dominant cost for skewed
//!   streams in Figure 5.
//! * **Bucket-level**: moving an element between frequency buckets locks the
//!   bucket list and the source/destination buckets; threads touching the
//!   same buckets serialize here — the dominant cost for less-skewed
//!   streams.
//!
//! plus the min-pointer lock that serializes overwriters at the
//! minimum-frequency bucket.
//!
//! Lock ordering (deadlock freedom): a thread owns at most one *element*
//! lock taken before anything else (a second element — the overwrite victim
//! — is only ever `try_lock`ed); then `min_serial`; then the bucket-list
//! lock; then bucket element-list locks. Chain locks are leaf locks never
//! held across other acquisitions (the entry lock taken under a chain lock
//! belongs to a freshly allocated, unpublished entry and cannot block).
//!
//! The engine is deliberately *naive*: it is the baseline whose collapse
//! under contention Figures 3(b), 5 and 7 measure, reimplemented faithfully
//! rather than improved.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use cots_core::report::WorkTally;
use cots_core::{
    ConcurrentCounter, CounterEntry, Element, MulHash, QueryableSummary, Result, Snapshot,
    SummaryConfig, WorkCounters,
};
use cots_profiling::{Phase, PhaseTimer};

use crate::lock::{LockKind, NaiveLock};

/// A monitored element's shared record.
struct Entry<K> {
    key: K,
    /// Element-level lock; `count == 0` means "allocated but not yet in the
    /// summary" (only its creator, which holds the lock, sees this state).
    state: NaiveLock<EntryState>,
    /// Set (under `state`) when the entry is evicted; readers retry.
    deleted: AtomicBool,
    /// Error bound, written under `state`, read lock-free by snapshots.
    error: AtomicU64,
    /// Position inside the owning bucket's element vector; guarded by that
    /// bucket's lock.
    pos: AtomicUsize,
}

struct EntryState {
    count: u64,
}

/// A frequency bucket: the set of entries with exactly this count.
struct FreqBucket<K> {
    freq: u64,
    elems: NaiveLock<Vec<Arc<Entry<K>>>>,
}

impl<K: Element> FreqBucket<K> {
    fn new(freq: u64, kind: LockKind) -> Arc<Self> {
        Arc::new(Self {
            freq,
            elems: NaiveLock::new(kind, Vec::new()),
        })
    }
}

/// Space Saving over a fully shared, two-level-locked Stream Summary.
pub struct SharedSpaceSaving<K: Element> {
    chains: Vec<NaiveLock<Vec<Arc<Entry<K>>>>>,
    hash_bits: u32,
    /// The bucket list, ordered by frequency.
    list: NaiveLock<BTreeMap<u64, Arc<FreqBucket<K>>>>,
    /// Serializes overwriters hunting the minimum bucket (the paper's
    /// min-pointer lock).
    min_serial: NaiveLock<()>,
    /// Cached min/max frequencies, maintained under the list lock.
    min_val: AtomicU64,
    max_val: AtomicU64,
    monitored: AtomicUsize,
    capacity: usize,
    total: AtomicU64,
    kind: LockKind,
    tally: Arc<WorkTally>,
}

impl<K: Element> SharedSpaceSaving<K> {
    /// Build with the given counter budget and lock flavour.
    pub fn new(config: SummaryConfig, kind: LockKind) -> Result<Self> {
        let hash_bits = (2 * config.capacity.max(2))
            .next_power_of_two()
            .trailing_zeros();
        let buckets = 1usize << hash_bits;
        Ok(Self {
            chains: (0..buckets)
                .map(|_| NaiveLock::new(kind, Vec::new()))
                .collect(),
            hash_bits,
            list: NaiveLock::new(kind, BTreeMap::new()),
            min_serial: NaiveLock::new(kind, ()),
            min_val: AtomicU64::new(0),
            max_val: AtomicU64::new(0),
            monitored: AtomicUsize::new(0),
            capacity: config.capacity,
            total: AtomicU64::new(0),
            kind,
            tally: Arc::new(WorkTally::new()),
        })
    }

    /// Counter budget.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of monitored elements.
    pub fn monitored(&self) -> usize {
        self.monitored.load(Ordering::Acquire)
    }

    /// Accumulated work counters.
    pub fn work(&self) -> WorkCounters {
        self.tally.snapshot()
    }

    /// The shared tally (for drivers that want to pre-register counts).
    pub fn tally(&self) -> &Arc<WorkTally> {
        &self.tally
    }

    /// Process one element while attributing time to the Figure-5 phases.
    pub fn process_profiled(&self, item: K, timer: &mut PhaseTimer) {
        self.process_weighted_profiled(item, 1, timer);
    }

    /// Process `weight` occurrences of `item` as one summary operation
    /// (used by the hybrid design's cache flushes).
    pub fn process_weighted_profiled(&self, item: K, weight: u64, timer: &mut PhaseTimer) {
        debug_assert!(weight > 0);
        self.total.fetch_add(weight, Ordering::Relaxed);
        self.tally.elements(weight);
        loop {
            // ---- Hash Opns: find-or-insert plus element-level blocking.
            let span = timer.start();
            let entry = self.find_or_insert(item);
            let mut guard = entry.state.lock_counted(&self.tally);
            timer.finish(Phase::HashOps, span);
            if entry.deleted.load(Ordering::Acquire) {
                drop(guard);
                continue; // evicted while we waited; retry lookup
            }
            // `count == 0` marks an entry not yet in the summary. Whichever
            // thread locks it first performs the admission; later threads
            // (including the creator, if it lost the race) see a positive
            // count and increment. This is the element-level
            // synchronization of §4.2: exactly one thread operates on the
            // element inside the summary.
            if guard.count == 0 {
                self.admit(&entry, &mut guard, weight, timer);
            } else {
                self.increment(&entry, &mut guard, weight, timer);
            }
            drop(guard);
            self.tally.boundary_crossings(1);
            self.tally.summary_ops(1);
            return;
        }
    }

    /// Find the live entry for `item`, or allocate one with `count == 0`.
    fn find_or_insert(&self, item: K) -> Arc<Entry<K>> {
        let idx = MulHash::index(MulHash::hash(&item), self.hash_bits);
        let mut chain = self.chains[idx].lock_counted(&self.tally);
        // Lazy deletion: garbage-collect evicted entries while we hold the
        // chain lock (the paper's "Garbage Collect all deleted entries in
        // the bucket" on insert).
        chain.retain(|e| !e.deleted.load(Ordering::Acquire));
        if let Some(e) = chain.iter().find(|e| e.key == item) {
            return e.clone();
        }
        let entry = Arc::new(Entry {
            key: item,
            state: NaiveLock::new(self.kind, EntryState { count: 0 }),
            deleted: AtomicBool::new(false),
            error: AtomicU64::new(0),
            pos: AtomicUsize::new(usize::MAX),
        });
        chain.push(entry.clone());
        entry
    }

    /// A new element enters the summary: add if there is room, otherwise
    /// overwrite the minimum (paper Algorithm 1).
    fn admit(
        &self,
        entry: &Arc<Entry<K>>,
        guard: &mut EntryState,
        weight: u64,
        timer: &mut PhaseTimer,
    ) {
        let reserved = self
            .monitored
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |c| {
                (c < self.capacity).then_some(c + 1)
            })
            .is_ok();
        if reserved {
            // ---- AddElementToBucket(1, e)
            let span = timer.start();
            let mut list = self.list.lock_counted(&self.tally);
            timer.finish(Phase::BucketLocks, span);
            let span = timer.start();
            let bucket = list
                .entry(weight)
                .or_insert_with(|| FreqBucket::new(weight, self.kind))
                .clone();
            let mut elems = bucket.elems.lock_counted(&self.tally);
            entry.pos.store(elems.len(), Ordering::Relaxed);
            elems.push(entry.clone());
            guard.count = weight;
            drop(elems);
            timer.finish(Phase::StructureOps, span);
            let span = timer.start();
            self.refresh_min_max(&list);
            timer.finish(Phase::MinMaxLocks, span);
        } else {
            self.overwrite(entry, guard, weight, timer);
        }
    }

    /// Move `entry` from its current bucket to `count + 1`.
    fn increment(
        &self,
        entry: &Arc<Entry<K>>,
        guard: &mut EntryState,
        weight: u64,
        timer: &mut PhaseTimer,
    ) {
        let old = guard.count;
        let new = old + weight;
        let span = timer.start();
        let mut list = self.list.lock_counted(&self.tally);
        timer.finish(Phase::BucketLocks, span);
        let span = timer.start();
        let src = list.get(&old).expect("entry's bucket must exist").clone();
        let dst = list
            .entry(new)
            .or_insert_with(|| FreqBucket::new(new, self.kind))
            .clone();
        // Source before destination: consistent (ascending-frequency) order.
        let mut src_elems = src.elems.lock_counted(&self.tally);
        let mut dst_elems = dst.elems.lock_counted(&self.tally);
        Self::detach(&mut src_elems, entry);
        entry.pos.store(dst_elems.len(), Ordering::Relaxed);
        dst_elems.push(entry.clone());
        guard.count = new;
        let src_empty = src_elems.is_empty();
        drop(dst_elems);
        drop(src_elems);
        if src_empty {
            list.remove(&old);
        }
        timer.finish(Phase::StructureOps, span);
        let span = timer.start();
        self.refresh_min_max(&list);
        timer.finish(Phase::MinMaxLocks, span);
    }

    /// Overwrite the minimum-frequency element with `entry` (which is new).
    fn overwrite(
        &self,
        entry: &Arc<Entry<K>>,
        guard: &mut EntryState,
        weight: u64,
        timer: &mut PhaseTimer,
    ) {
        loop {
            // ---- The min-pointer lock serializes overwriters.
            let span = timer.start();
            let _min = self.min_serial.lock_counted(&self.tally);
            timer.finish(Phase::MinMaxLocks, span);
            let span = timer.start();
            let mut list = self.list.lock_counted(&self.tally);
            timer.finish(Phase::BucketLocks, span);
            let span = timer.start();
            let Some((&min_freq, bucket)) = list.iter().next() else {
                // Nothing to evict (capacity reserved concurrently); treat
                // as add at frequency 1.
                drop(list);
                timer.finish(Phase::StructureOps, span);
                std::thread::yield_now();
                continue;
            };
            let bucket = bucket.clone();
            let mut elems = bucket.elems.lock_counted(&self.tally);
            // Find a victim whose element lock we can take without
            // blocking (blocking would deadlock against a thread that
            // holds the victim's element lock and wants the list lock we
            // hold), and evict it under that lock.
            let mut evicted: Option<Arc<Entry<K>>> = None;
            for i in 0..elems.len() {
                let cand = elems[i].clone();
                if Arc::ptr_eq(&cand, entry) {
                    continue;
                }
                let locked = if let Some(mut g) = cand.state.try_lock() {
                    debug_assert_eq!(g.count, min_freq);
                    cand.deleted.store(true, Ordering::Release);
                    g.count = 0;
                    true
                } else {
                    false
                };
                if locked {
                    evicted = Some(cand);
                    break;
                }
            }
            let Some(victim) = evicted else {
                // Every candidate is busy: in the naive design the thread
                // simply waits its turn at the min bucket.
                drop(elems);
                drop(list);
                timer.finish(Phase::StructureOps, span);
                self.tally.overwrite_deferrals(1);
                std::thread::yield_now();
                continue;
            };
            Self::detach(&mut elems, &victim);
            let bucket_empty = elems.is_empty();
            drop(elems);
            // Install the newcomer at min_freq + weight with error
            // min_freq.
            let new_count = min_freq + weight;
            let dst = list
                .entry(new_count)
                .or_insert_with(|| FreqBucket::new(new_count, self.kind))
                .clone();
            let mut dst_elems = dst.elems.lock_counted(&self.tally);
            entry.pos.store(dst_elems.len(), Ordering::Relaxed);
            dst_elems.push(entry.clone());
            drop(dst_elems);
            guard.count = new_count;
            entry.error.store(min_freq, Ordering::Release);
            if bucket_empty {
                list.remove(&min_freq);
            }
            timer.finish(Phase::StructureOps, span);
            let span = timer.start();
            self.refresh_min_max(&list);
            timer.finish(Phase::MinMaxLocks, span);
            self.tally.overwrites(1);
            return;
        }
    }

    /// Remove `entry` from a bucket's element vector in O(1) via its cached
    /// position, fixing the position of the displaced element.
    fn detach(elems: &mut Vec<Arc<Entry<K>>>, entry: &Arc<Entry<K>>) {
        let pos = entry.pos.load(Ordering::Relaxed);
        debug_assert!(pos < elems.len() && Arc::ptr_eq(&elems[pos], entry));
        elems.swap_remove(pos);
        if pos < elems.len() {
            elems[pos].pos.store(pos, Ordering::Relaxed);
        }
    }

    /// Maintain the cached min/max frequency (callers hold the list lock).
    fn refresh_min_max(&self, list: &BTreeMap<u64, Arc<FreqBucket<K>>>) {
        self.min_val
            .store(list.keys().next().copied().unwrap_or(0), Ordering::Release);
        self.max_val.store(
            list.keys().next_back().copied().unwrap_or(0),
            Ordering::Release,
        );
    }

    /// Current minimum monitored frequency (0 when empty).
    pub fn min_count(&self) -> u64 {
        self.min_val.load(Ordering::Acquire)
    }

    /// Current maximum monitored frequency (0 when empty).
    pub fn max_count(&self) -> u64 {
        self.max_val.load(Ordering::Acquire)
    }
}

impl<K: Element> ConcurrentCounter<K> for SharedSpaceSaving<K> {
    fn process(&self, item: K) {
        let mut timer = PhaseTimer::disabled();
        self.process_profiled(item, &mut timer);
    }

    fn process_slice(&self, items: &[K]) {
        // One (disabled) timer hoisted across the batch instead of one per
        // element; the summary work itself is deliberately unchanged — the
        // naive design has no batch-level shortcut to measure.
        let mut timer = PhaseTimer::disabled();
        for &item in items {
            self.process_profiled(item, &mut timer);
        }
    }

    fn ingest_batch(&self, items: &[K]) {
        self.process_slice(items);
    }

    fn processed(&self) -> u64 {
        self.total.load(Ordering::Acquire)
    }
}

impl<K: Element> QueryableSummary<K> for SharedSpaceSaving<K> {
    fn snapshot(&self) -> Snapshot<K> {
        let list = self.list.lock();
        let mut entries = Vec::new();
        for bucket in list.values().rev() {
            let elems = bucket.elems.lock();
            for e in elems.iter() {
                entries.push(CounterEntry::new(
                    e.key,
                    bucket.freq,
                    e.error.load(Ordering::Acquire).min(bucket.freq),
                ));
            }
        }
        Snapshot::new(entries, self.total.load(Ordering::Acquire))
    }

    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        let idx = MulHash::index(MulHash::hash(item), self.hash_bits);
        let chain = self.chains[idx].lock();
        let entry = chain
            .iter()
            .find(|e| e.key == *item && !e.deleted.load(Ordering::Acquire))?
            .clone();
        drop(chain);
        let count = entry.state.lock().count;
        if count == 0 {
            return None;
        }
        Some((count, entry.error.load(Ordering::Acquire).min(count)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Barrier;

    fn engine(capacity: usize, kind: LockKind) -> SharedSpaceSaving<u64> {
        SharedSpaceSaving::new(SummaryConfig::with_capacity(capacity).unwrap(), kind).unwrap()
    }

    #[test]
    fn sequential_use_matches_space_saving_semantics() {
        let s = engine(2, LockKind::Mutex);
        for e in [1u64, 1, 2, 3] {
            s.process(e);
        }
        // {1:2, 2:1} then 3 overwrites 2 -> {1:2, 3:2(err 1)}.
        assert_eq!(s.estimate(&1), Some((2, 0)));
        assert_eq!(s.estimate(&2), None);
        assert_eq!(s.estimate(&3), Some((2, 1)));
        assert_eq!(s.processed(), 4);
        assert_eq!(s.monitored(), 2);
        // Count conservation.
        let sum: u64 = s.snapshot().entries().iter().map(|e| e.count).sum();
        assert_eq!(sum, 4);
    }

    #[test]
    fn min_max_tracking() {
        let s = engine(8, LockKind::Mutex);
        for e in [5u64, 5, 5, 6] {
            s.process(e);
        }
        assert_eq!(s.min_count(), 1);
        assert_eq!(s.max_count(), 3);
    }

    #[test]
    fn concurrent_count_conservation_exact_alphabet() {
        // Alphabet fits capacity: counts must be exact regardless of
        // interleaving.
        for kind in [LockKind::Mutex, LockKind::Spin] {
            let s = Arc::new(engine(64, kind));
            let threads = 8;
            let per = 5_000u64;
            let barrier = Arc::new(Barrier::new(threads));
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let s = s.clone();
                    let b = barrier.clone();
                    std::thread::spawn(move || {
                        b.wait();
                        for i in 0..per {
                            s.process((t as u64 + i) % 32);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(s.processed(), threads as u64 * per);
            let snap = s.snapshot();
            let sum: u64 = snap.entries().iter().map(|e| e.count).sum();
            assert_eq!(sum, threads as u64 * per, "kind {kind:?}");
            assert!(snap.len() <= 64);
        }
    }

    #[test]
    fn concurrent_overwrites_preserve_conservation() {
        // Alphabet much larger than capacity: constant eviction churn.
        let s = Arc::new(engine(16, LockKind::Mutex));
        let threads = 6;
        let per = 4_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let s = s.clone();
                std::thread::spawn(move || {
                    let mut x = 0x9E3779B97F4A7C15u64 ^ (t as u64);
                    for _ in 0..per {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        // Skewed-ish: half the mass on 8 hot keys.
                        let e = if x & 1 == 0 { x % 8 } else { 100 + (x % 5000) };
                        s.process(e);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let n = threads as u64 * per;
        assert_eq!(s.processed(), n);
        let snap = s.snapshot();
        let sum: u64 = snap.entries().iter().map(|e| e.count).sum();
        assert_eq!(sum, n, "Σ counters must equal N under churn");
        assert_eq!(snap.len(), 16);
        assert!(s.work().overwrites > 0);
        // Bounds: count - error <= true <= count needs ground truth; here
        // assert the structural half: error <= count.
        for e in snap.entries() {
            assert!(e.error <= e.count);
        }
    }

    #[test]
    fn hot_element_hammering() {
        // All threads process the same single element: element-level
        // serialization, counts must still be exact.
        let s = Arc::new(engine(4, LockKind::Mutex));
        let threads = 8;
        let per = 3_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let s = s.clone();
                std::thread::spawn(move || {
                    for _ in 0..per {
                        s.process(7u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.estimate(&7), Some((threads as u64 * per, 0)));
    }

    #[test]
    fn work_counters_populate() {
        let s = engine(4, LockKind::Mutex);
        for e in 0..100u64 {
            s.process(e % 10);
        }
        let w = s.work();
        assert_eq!(w.elements, 100);
        assert_eq!(w.boundary_crossings, 100);
        assert!(w.lock_acquisitions > 0);
        assert!(w.overwrites > 0);
    }

    #[test]
    fn profiled_processing_attributes_time() {
        let s = engine(8, LockKind::Mutex);
        let mut timer = PhaseTimer::enabled();
        for e in 0..1000u64 {
            s.process_profiled(e % 20, &mut timer);
        }
        let t = timer.times();
        assert!(t.get(Phase::HashOps) > std::time::Duration::ZERO);
        assert!(t.get(Phase::StructureOps) > std::time::Duration::ZERO);
    }
}
