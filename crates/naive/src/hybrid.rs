//! The **Hybrid** structure sketched (and dismissed) in §4.4.
//!
//! "One possible extension can be to maintain a combination of local and
//! global counters […] to limit the contention (by hitting local counters
//! frequently) as well as space overhead. This design would not be scalable
//! as well because on the two extremes of the input distribution it would
//! degenerate into one or the other parent technique."
//!
//! Each worker keeps a small private counter cache; counts are buffered
//! locally and flushed into the shared locked structure as weighted updates
//! every `flush_every` elements. On skewed input the cache absorbs most
//! increments (degenerates toward the independent design, with its merge
//! staleness); on uniform input nearly every element misses the cache and
//! goes straight to the shared structure (degenerates toward the shared
//! design, with its contention). Implemented so §4.4's argument can be
//! measured rather than taken on faith.

use std::collections::HashMap;

use cots_core::{ConcurrentCounter, Element, QueryableSummary, Result, Snapshot, SummaryConfig};
use cots_profiling::PhaseTimer;

use crate::lock::LockKind;
use crate::shared::SharedSpaceSaving;

/// Shared engine plus per-thread write-back counter caches.
pub struct HybridSpaceSaving<K: Element> {
    shared: SharedSpaceSaving<K>,
    /// Maximum distinct keys buffered per worker.
    cache_keys: usize,
    /// Buffered increments per worker before a forced flush.
    flush_every: u64,
}

/// A worker's private cache; create one per thread with
/// [`HybridSpaceSaving::new_cache`], and [`HybridSpaceSaving::flush`] it
/// before reading results.
#[derive(Debug)]
pub struct LocalCache<K> {
    counts: HashMap<K, u64>,
    buffered: u64,
}

impl<K: Element> HybridSpaceSaving<K> {
    /// Build over a shared structure of the given budget.
    pub fn new(
        config: SummaryConfig,
        kind: LockKind,
        cache_keys: usize,
        flush_every: u64,
    ) -> Result<Self> {
        Ok(Self {
            shared: SharedSpaceSaving::new(config, kind)?,
            cache_keys: cache_keys.max(1),
            flush_every: flush_every.max(1),
        })
    }

    /// The shared substrate (for inspection).
    pub fn shared(&self) -> &SharedSpaceSaving<K> {
        &self.shared
    }

    /// A fresh per-worker cache.
    pub fn new_cache(&self) -> LocalCache<K> {
        LocalCache {
            counts: HashMap::with_capacity(self.cache_keys * 2),
            buffered: 0,
        }
    }

    /// Process one element through a worker's cache.
    pub fn process_cached(&self, cache: &mut LocalCache<K>, item: K) {
        // Hot path: bump a locally cached key.
        if let Some(c) = cache.counts.get_mut(&item) {
            *c += 1;
            cache.buffered += 1;
        } else if cache.counts.len() < self.cache_keys {
            cache.counts.insert(item, 1);
            cache.buffered += 1;
        } else {
            // Cache full: this element bypasses straight to the shared
            // structure (the uniform-input degeneration).
            self.shared.process(item);
        }
        if cache.buffered >= self.flush_every {
            self.flush(cache);
        }
    }

    /// Push a worker's buffered counts into the shared structure: one
    /// weighted summary operation per cached key.
    pub fn flush(&self, cache: &mut LocalCache<K>) {
        let mut timer = PhaseTimer::disabled();
        for (item, count) in cache.counts.drain() {
            self.shared
                .process_weighted_profiled(item, count, &mut timer);
        }
        cache.buffered = 0;
    }
}

impl<K: Element> QueryableSummary<K> for HybridSpaceSaving<K> {
    fn snapshot(&self) -> Snapshot<K> {
        self.shared.snapshot()
    }

    fn estimate(&self, item: &K) -> Option<(u64, u64)> {
        self.shared.estimate(item)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn engine(capacity: usize, cache: usize, flush: u64) -> HybridSpaceSaving<u64> {
        HybridSpaceSaving::new(
            SummaryConfig::with_capacity(capacity).unwrap(),
            LockKind::Mutex,
            cache,
            flush,
        )
        .unwrap()
    }

    #[test]
    fn flush_delivers_all_counts() {
        let h = engine(32, 8, 1000);
        let mut cache = h.new_cache();
        for e in [1u64, 1, 2, 3, 1] {
            h.process_cached(&mut cache, e);
        }
        // Nothing visible before the flush (all cached).
        assert_eq!(h.shared().processed(), 0);
        h.flush(&mut cache);
        assert_eq!(h.shared().processed(), 5);
        assert_eq!(h.estimate(&1), Some((3, 0)));
    }

    #[test]
    fn auto_flush_at_threshold() {
        let h = engine(32, 8, 4);
        let mut cache = h.new_cache();
        for e in [1u64, 1, 1, 1] {
            h.process_cached(&mut cache, e);
        }
        // Fourth buffered increment triggers the flush.
        assert_eq!(h.shared().processed(), 4);
    }

    #[test]
    fn cache_overflow_bypasses_to_shared() {
        let h = engine(32, 2, 1000);
        let mut cache = h.new_cache();
        h.process_cached(&mut cache, 1);
        h.process_cached(&mut cache, 2);
        h.process_cached(&mut cache, 3); // cache full -> direct
        assert_eq!(h.shared().processed(), 1);
        h.flush(&mut cache);
        assert_eq!(h.shared().processed(), 3);
    }

    #[test]
    fn concurrent_hybrid_conserves_counts() {
        let h = Arc::new(engine(64, 16, 64));
        let threads = 4;
        let per = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    let mut cache = h.new_cache();
                    let mut x = t as u64 + 1;
                    for _ in 0..per {
                        x = x.wrapping_mul(6364136223846793005).wrapping_add(1);
                        h.process_cached(&mut cache, x % 32);
                    }
                    h.flush(&mut cache);
                })
            })
            .collect();
        for th in handles {
            th.join().unwrap();
        }
        let n = threads as u64 * per;
        assert_eq!(h.shared().processed(), n);
        let sum: u64 = h.snapshot().entries().iter().map(|e| e.count).sum();
        assert_eq!(sum, n);
    }
}
