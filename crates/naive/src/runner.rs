//! Measurement driver for shared-state concurrent engines.
//!
//! Partitions the stream into contiguous chunks (the paper's setup), spawns
//! one worker per chunk, and measures the wall-clock counting time. With
//! `profile = true` each worker carries an enabled [`PhaseTimer`] and the
//! per-thread phase times are returned (the residual time outside any
//! attributed phase is booked as `Rest`, matching Figure 5's "Rest" series).

use std::sync::Mutex;
use std::time::Instant;

use cots_core::{ConcurrentCounter, CotsError, Element, Result, RunStats, WorkCounters};
use cots_datagen::partition::chunked;
use cots_profiling::{Phase, PhaseTimer, PhaseTimes};

/// An engine the runner can drive with per-phase attribution.
pub trait ProfiledCounter<K: Element>: Send + Sync {
    /// Process one element, attributing time to phases.
    fn process_profiled(&self, item: K, timer: &mut PhaseTimer);

    /// Total elements processed (exact at quiescence).
    fn processed(&self) -> u64;

    /// Work counters accumulated so far.
    fn work(&self) -> WorkCounters;

    /// Engine label for reports.
    fn label(&self) -> String;
}

impl<K: Element> ProfiledCounter<K> for crate::shared::SharedSpaceSaving<K> {
    fn process_profiled(&self, item: K, timer: &mut PhaseTimer) {
        crate::shared::SharedSpaceSaving::process_profiled(self, item, timer);
    }

    fn processed(&self) -> u64 {
        cots_core::ConcurrentCounter::processed(self)
    }

    fn work(&self) -> WorkCounters {
        crate::shared::SharedSpaceSaving::work(self)
    }

    fn label(&self) -> String {
        "shared".into()
    }
}

/// Outcome of a concurrent run.
#[derive(Debug)]
pub struct ConcurrentOutcome {
    /// Wall-clock stats and work counters.
    pub stats: RunStats,
    /// Per-thread phase times (empty unless profiling was enabled).
    pub phase_times: Vec<PhaseTimes>,
}

/// Drive `engine` over `stream` with `threads` workers on contiguous
/// chunks; measure the counting wall-clock.
pub fn run_concurrent<K: Element, E: ProfiledCounter<K>>(
    engine: &E,
    stream: &[K],
    threads: usize,
    profile: bool,
) -> Result<ConcurrentOutcome> {
    if threads == 0 {
        return Err(CotsError::InvalidRun("threads must be positive".into()));
    }
    if stream.is_empty() {
        return Err(CotsError::InvalidRun("stream must be non-empty".into()));
    }
    let chunks = chunked(stream, threads);
    let phase_slots: Vec<Mutex<PhaseTimes>> = (0..threads)
        .map(|_| Mutex::new(PhaseTimes::default()))
        .collect();
    let start = Instant::now();
    std::thread::scope(|scope| {
        for (tid, chunk) in chunks.iter().enumerate() {
            let phase_slots = &phase_slots;
            let engine = &engine;
            scope.spawn(move || {
                let mut timer = if profile {
                    PhaseTimer::enabled()
                } else {
                    PhaseTimer::disabled()
                };
                let thread_start = Instant::now();
                for &item in *chunk {
                    engine.process_profiled(item, &mut timer);
                }
                let wall = thread_start.elapsed();
                let mut times = timer.into_times();
                if profile {
                    // Residual time is the "Rest" series.
                    let attributed = times.total();
                    if wall > attributed {
                        times.add(Phase::Rest, wall - attributed);
                    }
                }
                *phase_slots[tid].lock().unwrap() = times;
            });
        }
    });
    let elapsed = start.elapsed();
    let stats = RunStats {
        engine: engine.label(),
        threads,
        elements: stream.len() as u64,
        elapsed,
        work: engine.work(),
    };
    Ok(ConcurrentOutcome {
        stats,
        phase_times: phase_slots
            .into_iter()
            .map(|m| m.into_inner().unwrap())
            .collect(),
    })
}

/// Drive `engine` over `stream` with `threads` workers feeding fixed-size
/// batches through [`ConcurrentCounter::ingest_batch`].
///
/// This is the batch-for-batch counterpart of [`run_concurrent`]: CoTS
/// ingests through `delegate_batch`, so comparing it against a baseline
/// driven per-element would conflate the algorithms with the call
/// protocol. Phase profiling is not supported on this path (batch entry
/// points own their timers).
pub fn run_concurrent_batched<K, E>(
    engine: &E,
    stream: &[K],
    threads: usize,
    batch: usize,
) -> Result<RunStats>
where
    K: Element,
    E: ProfiledCounter<K> + ConcurrentCounter<K>,
{
    if threads == 0 {
        return Err(CotsError::InvalidRun("threads must be positive".into()));
    }
    if batch == 0 {
        return Err(CotsError::InvalidRun("batch must be positive".into()));
    }
    if stream.is_empty() {
        return Err(CotsError::InvalidRun("stream must be non-empty".into()));
    }
    let chunks = chunked(stream, threads);
    let start = Instant::now();
    std::thread::scope(|scope| {
        for chunk in &chunks {
            let engine = &engine;
            scope.spawn(move || {
                for b in chunk.chunks(batch) {
                    engine.ingest_batch(b);
                }
            });
        }
    });
    let elapsed = start.elapsed();
    Ok(RunStats {
        engine: engine.label(),
        threads,
        elements: stream.len() as u64,
        elapsed,
        work: ProfiledCounter::work(engine),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lock::LockKind;
    use crate::shared::SharedSpaceSaving;
    use cots_core::{QueryableSummary, SummaryConfig};
    use cots_datagen::StreamSpec;

    #[test]
    fn runner_processes_whole_stream() {
        let stream = StreamSpec::zipf(10_000, 200, 2.0, 4).generate();
        let engine = SharedSpaceSaving::<u64>::new(
            SummaryConfig::with_capacity(64).unwrap(),
            LockKind::Mutex,
        )
        .unwrap();
        let out = run_concurrent(&engine, &stream, 4, false).unwrap();
        assert_eq!(out.stats.elements, 10_000);
        assert_eq!(engine.snapshot().total(), 10_000);
        let sum: u64 = engine.snapshot().entries().iter().map(|e| e.count).sum();
        assert_eq!(sum, 10_000);
    }

    #[test]
    fn profiled_run_produces_phase_times() {
        let stream = StreamSpec::zipf(5_000, 100, 1.5, 4).generate();
        let engine = SharedSpaceSaving::<u64>::new(
            SummaryConfig::with_capacity(32).unwrap(),
            LockKind::Mutex,
        )
        .unwrap();
        let out = run_concurrent(&engine, &stream, 2, true).unwrap();
        assert_eq!(out.phase_times.len(), 2);
        let any_hash = out
            .phase_times
            .iter()
            .any(|t| t.get(Phase::HashOps) > std::time::Duration::ZERO);
        assert!(any_hash);
    }

    #[test]
    fn batched_runner_matches_per_element_totals() {
        let stream = StreamSpec::zipf(8_000, 150, 1.8, 9).generate();
        let engine = SharedSpaceSaving::<u64>::new(
            SummaryConfig::with_capacity(64).unwrap(),
            LockKind::Mutex,
        )
        .unwrap();
        let stats = run_concurrent_batched(&engine, &stream, 4, 256).unwrap();
        assert_eq!(stats.elements, 8_000);
        assert_eq!(stats.work.elements, 8_000);
        let sum: u64 = engine.snapshot().entries().iter().map(|e| e.count).sum();
        assert_eq!(sum, 8_000);
        assert!(run_concurrent_batched(&engine, &stream, 4, 0).is_err());
    }

    #[test]
    fn rejects_invalid_input() {
        let engine = SharedSpaceSaving::<u64>::new(
            SummaryConfig::with_capacity(8).unwrap(),
            LockKind::Mutex,
        )
        .unwrap();
        assert!(run_concurrent(&engine, &[], 2, false).is_err());
        assert!(run_concurrent(&engine, &[1u64], 0, false).is_err());
    }
}
