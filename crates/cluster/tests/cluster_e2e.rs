//! Cluster end-to-end: a real `cots-coord` process fronting two real
//! `cots-member` processes over loopback. One member runs with a
//! durable WAL (`--fsync always`) and is SIGKILLed mid-stream:
//!
//! * the coordinator must keep answering (degraded mode, no panic),
//!   report the member as degraded in `CLUSTER_STATS`, and keep
//!   accepting ingest by spilling the dead member's keys to the
//!   survivor;
//! * the killed member must rejoin on the same port after recovering
//!   its checkpoint + WAL tail, after which the cluster converges to a
//!   *stable* staleness floor (never zero after a crash — the floor is
//!   the acked-but-lost tail) with every answer inside the envelope
//!   `count − error ≤ sent(k)` and `acked(k) ≤ count + staleness`.
//!
//! Batches the coordinator answered with an error (delivery uncertain:
//! the wire died after part of the batch was forwarded) are tracked
//! separately — their keys count toward the upper truth (they may have
//! been partially delivered) but not toward the acked lower bound.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use cots_cluster::fetch::{fetch_snapshot, Fetched};
use cots_datagen::{ExactCounter, StreamSpec};
use cots_serve::protocol::QueryReq;
use cots_serve::{Client, Request, Response};

const PHASE1: usize = 30_000;
const PHASE2: usize = 20_000;
const KILL_AFTER: usize = 8_000; // into phase 2
const PHASE3: usize = 10_000;
const TOTAL: usize = PHASE1 + PHASE2 + PHASE3;
const ALPHABET: usize = 2_000;
const ALPHA: f64 = 1.2;
const SEED: u64 = 42;
const BATCH: usize = 500;
const PHI: f64 = 0.01;

struct Proc {
    child: Child,
    addr: String,
    recovery_line: Option<String>,
}

fn spawn(bin: &str, args: &[String]) -> Proc {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut recovery_line = None;
    let mut addr = None;
    for _ in 0..16 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        let line = line.trim().to_string();
        if let Some(rest) = line.strip_prefix("listening on ") {
            addr = Some(rest.to_string());
            break;
        }
        if line.starts_with("recovered ") {
            recovery_line = Some(line);
        }
    }
    // Keep draining stdout so the child never blocks on a full pipe.
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            if reader.read_line(&mut sink).unwrap_or(0) == 0 {
                break;
            }
        }
    });
    Proc {
        child,
        addr: addr.expect("process never printed its listening line"),
        recovery_line,
    }
}

fn spawn_member(addr: &str, data_dir: Option<&Path>) -> Proc {
    let mut args: Vec<String> = [
        "--addr", addr, "--shards", "2", "--capacity", "512", "--refresh-ms", "10",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if let Some(dir) = data_dir {
        args.push("--data-dir".into());
        args.push(dir.display().to_string());
        args.push("--fsync".into());
        args.push("always".into());
        args.push("--checkpoint-ms".into());
        args.push("300".into());
    }
    spawn(env!("CARGO_BIN_EXE_cots-member"), &args)
}

fn spawn_coord(members: &[&str]) -> Proc {
    let args: Vec<String> = [
        "--addr",
        "127.0.0.1:0",
        "--members",
        &members.join(","),
        "--capacity",
        "1024",
        "--pull-ms",
        "20",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    spawn(env!("CARGO_BIN_EXE_cots-coord"), &args)
}

/// Reserve a loopback port so a killed member can rejoin on the same
/// address the coordinator already knows.
fn reserve_port() -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().port()
}

fn cluster_report(client: &mut Client) -> cots_core::report::ClusterReport {
    match client.call(&Request::ClusterStats).unwrap() {
        Response::ClusterStats(report) => report,
        other => panic!("unexpected CLUSTER_STATS response: {other:?}"),
    }
}

/// Poll `CLUSTER_STATS` until `pred` holds, panicking after `timeout`.
fn await_cluster<F>(client: &mut Client, timeout: Duration, what: &str, mut pred: F)
where
    F: FnMut(&cots_core::report::ClusterReport) -> bool,
{
    let deadline = Instant::now() + timeout;
    loop {
        let report = cluster_report(client);
        if pred(&report) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {report:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn member_sigkill_degrades_then_rejoins_and_converges() {
    let dir: PathBuf = std::env::temp_dir().join(format!("cots-cluster-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let full = StreamSpec::zipf(TOTAL, ALPHABET, ALPHA, SEED).generate();

    // Member A is ephemeral; member B is durable and will be killed.
    let member_a = spawn_member("127.0.0.1:0", None);
    let b_port = reserve_port();
    let b_addr = format!("127.0.0.1:{b_port}");
    let member_b = spawn_member(&b_addr, Some(&dir));
    let coord = spawn_coord(&[&member_a.addr, &member_b.addr]);
    let mut client = Client::connect(&coord.addr).unwrap();

    // ---- Phase 1: healthy cluster quiesces to staleness 0. ----
    let mut acked: Vec<u64> = Vec::with_capacity(TOTAL);
    for batch in full[..PHASE1].chunks(BATCH) {
        client.ingest(batch).unwrap();
        acked.extend_from_slice(batch);
    }
    await_cluster(&mut client, Duration::from_secs(30), "phase-1 quiescence", |r| {
        r.captured_total == PHASE1 as u64 && r.staleness == 0
    });
    let healthy = cluster_report(&mut client);
    assert_eq!(healthy.members.len(), 2);
    assert_eq!(healthy.degraded_members, 0);
    assert_eq!(healthy.forwarded_keys, PHASE1 as u64);

    // The streamed federated snapshot matches the one-shot answer path.
    let mut pager = Client::connect(&coord.addr).unwrap();
    match fetch_snapshot(&mut pager, 0).unwrap() {
        Fetched::Changed(fetched) => {
            assert_eq!(fetched.captured_total, PHASE1 as u64);
            assert_eq!(fetched.snapshot.total(), PHASE1 as u64);
        }
        Fetched::Unchanged { stamp } => panic!("fresh pull short-circuited: {stamp:?}"),
    }
    drop(pager);

    // ---- Phase 2: SIGKILL the durable member mid-stream. ----
    let mut uncertain: Vec<u64> = Vec::new();
    let mut member_b = member_b;
    let mut offset = PHASE1;
    for (i, batch) in full[PHASE1..PHASE1 + PHASE2].chunks(BATCH).enumerate() {
        if i * BATCH == KILL_AFTER {
            member_b.child.kill().unwrap();
            member_b.child.wait().unwrap();
        }
        match client.ingest(batch) {
            // Fully acked: every partition was delivered exactly once.
            Ok(_) => acked.extend_from_slice(batch),
            // Delivery uncertain: the wire to a member died after part
            // of the batch went out. The coordinator must NOT re-send
            // (that would double-count), so the client treats the whole
            // batch as slack: maybe-delivered, never acked.
            Err(_) => uncertain.extend_from_slice(batch),
        }
        offset += batch.len();
    }
    assert_eq!(offset, PHASE1 + PHASE2);
    // Whether any batch lands in the uncertain window depends on which
    // side notices the death first (the in-flight forward, or the
    // puller marking the member down so later batches spill cleanly) —
    // but it must stay a window, not a flood.
    assert!(
        uncertain.len() <= 3 * BATCH,
        "expected at most a few uncertain batches around the kill, got {} keys",
        uncertain.len()
    );

    // Degraded mode: the dead member is reported, answers keep coming.
    await_cluster(&mut client, Duration::from_secs(10), "degraded detection", |r| {
        r.degraded_members == 1
    });
    let degraded = cluster_report(&mut client);
    let dead: Vec<_> = degraded.members.iter().filter(|m| !m.healthy).collect();
    assert_eq!(dead.len(), 1);
    assert_eq!(dead[0].addr, b_addr, "the killed member is the degraded one");
    for _ in 0..3 {
        let (entries, total, stamp) = client.query(QueryReq::TopK { k: 10 }).unwrap();
        assert!(!entries.is_empty(), "degraded cluster still answers");
        assert!(total > 0);
        assert!(
            stamp.captured_total + stamp.staleness >= acked.len() as u64,
            "degraded envelope accounts for every acked key"
        );
    }

    // ---- Rejoin: restart member B on the same port and directory. ----
    let member_b = spawn_member(&b_addr, Some(&dir));
    let line = member_b
        .recovery_line
        .clone()
        .expect("restarted member reports recovery");
    assert!(line.starts_with("recovered "), "recovery line: {line}");
    await_cluster(&mut client, Duration::from_secs(30), "member rejoin", |r| {
        r.degraded_members == 0
    });

    // ---- Phase 3: keep streaming, then converge to a stable floor. ----
    for batch in full[PHASE1 + PHASE2..].chunks(BATCH) {
        match client.ingest(batch) {
            Ok(_) => acked.extend_from_slice(batch),
            Err(_) => uncertain.extend_from_slice(batch),
        }
    }
    // Convergence: the (captured, staleness) pair stops moving. The
    // floor is whatever mass died in B's queues — with `--fsync always`
    // it is small, but it is NOT required to be zero.
    let mut floor = None;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut stable = 0;
    while stable < 10 {
        let r = cluster_report(&mut client);
        let pair = (r.captured_total, r.staleness);
        if floor == Some(pair) {
            stable += 1;
        } else {
            floor = Some(pair);
            stable = 0;
        }
        assert!(
            Instant::now() < deadline,
            "cluster never converged to a stable floor: {r:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let (captured, staleness) = floor.unwrap();
    let report = cluster_report(&mut client);
    assert_eq!(report.degraded_members, 0, "converged cluster is healthy");
    assert!(
        captured + staleness >= acked.len() as u64,
        "acked mass escaped the envelope: captured {captured} + staleness {staleness} \
         < acked {}",
        acked.len()
    );
    assert!(
        captured <= (acked.len() + uncertain.len()) as u64,
        "cluster captured {captured} keys but only {} were even sent",
        acked.len() + uncertain.len()
    );

    // ---- Final envelope vs exact truth. ----
    let sent_truth = ExactCounter::from_stream(&full[..PHASE1 + PHASE2 + PHASE3]);
    let acked_truth = ExactCounter::from_stream(&acked);
    let (entries, total, stamp) = client.query(QueryReq::Frequent { phi: PHI }).unwrap();
    assert_eq!(total, captured);
    assert_eq!(stamp.staleness, staleness);
    assert!(!entries.is_empty());
    for e in &entries {
        let sent_k = sent_truth.count(&e.item);
        assert!(
            e.count - e.error <= sent_k,
            "over-report: key {} guaranteed {} but at most {} sent",
            e.item,
            e.count - e.error,
            sent_k
        );
        let acked_k = acked_truth.count(&e.item);
        assert!(
            acked_k <= e.count + stamp.staleness,
            "under-report: key {} acked {} but count {} + staleness {} cannot cover it",
            e.item,
            acked_k,
            e.count,
            stamp.staleness
        );
    }

    // ---- Teardown. ----
    client.shutdown().unwrap();
    drop(client);
    let mut coord_child = coord.child;
    coord_child.wait().unwrap();
    for proc_ in [member_a, member_b] {
        let mut child = proc_.child;
        if let Ok(mut down) = Client::connect(&proc_.addr) {
            let _ = down.shutdown();
        }
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&dir);
}
