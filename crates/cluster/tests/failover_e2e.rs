//! Failover end-to-end: a real `cots-coord` fronting a replica pair
//! (primary shipping its WAL to a standby via `--peer`) plus one plain
//! member. The primary is SIGKILLed mid-stream:
//!
//! * the coordinator's health checks must promote the standby — no
//!   process restarts anywhere — and flip the slot's routing to it;
//! * ingest and queries keep flowing throughout (spillover covers the
//!   promotion window);
//! * after quiescence the federated answers sit inside the
//!   `count ± error` envelope against exact truth, with the loss
//!   bounded by the un-acked WAL tail the standby never received —
//!   visible in `CLUSTER_STATS` as the stable staleness floor and the
//!   slot's `repl_unacked_keys` attribution.

#![cfg(unix)]

use std::io::{BufRead, BufReader};
use std::net::TcpListener;
use std::path::{Path, PathBuf};
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use cots_datagen::{ExactCounter, StreamSpec};
use cots_serve::protocol::QueryReq;
use cots_serve::{Client, Request, Response};

const PHASE1: usize = 30_000;
const PHASE2: usize = 20_000;
const KILL_AFTER: usize = 8_000; // into phase 2
const PHASE3: usize = 10_000;
const TOTAL: usize = PHASE1 + PHASE2 + PHASE3;
const ALPHABET: usize = 2_000;
const ALPHA: f64 = 1.2;
const SEED: u64 = 7;
const BATCH: usize = 500;

struct Proc {
    child: Child,
    addr: String,
}

fn spawn(bin: &str, args: &[String]) -> Proc {
    let mut child = Command::new(bin)
        .args(args)
        .stdout(Stdio::piped())
        .stderr(Stdio::inherit())
        .spawn()
        .unwrap_or_else(|e| panic!("spawn {bin}: {e}"));
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let mut addr = None;
    for _ in 0..16 {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap() == 0 {
            break;
        }
        if let Some(rest) = line.trim().strip_prefix("listening on ") {
            addr = Some(rest.to_string());
            break;
        }
    }
    std::thread::spawn(move || {
        let mut sink = String::new();
        loop {
            sink.clear();
            if reader.read_line(&mut sink).unwrap_or(0) == 0 {
                break;
            }
        }
    });
    Proc {
        child,
        addr: addr.expect("process never printed its listening line"),
    }
}

fn spawn_member(addr: &str, data_dir: Option<&Path>, standby: bool, peer: Option<&str>) -> Proc {
    let mut args: Vec<String> = [
        "--addr", addr, "--shards", "2", "--capacity", "512", "--refresh-ms", "10",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    if let Some(dir) = data_dir {
        args.push("--data-dir".into());
        args.push(dir.display().to_string());
        args.push("--fsync".into());
        args.push("always".into());
        args.push("--checkpoint-ms".into());
        args.push("300".into());
    }
    if standby {
        args.push("--standby".into());
    }
    if let Some(p) = peer {
        args.push("--peer".into());
        args.push(p.into());
    }
    spawn(env!("CARGO_BIN_EXE_cots-member"), &args)
}

fn reserve_port() -> u16 {
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    listener.local_addr().unwrap().port()
}

fn cluster_report(client: &mut Client) -> cots_core::report::ClusterReport {
    match client.call(&Request::ClusterStats).unwrap() {
        Response::ClusterStats(report) => report,
        other => panic!("unexpected CLUSTER_STATS response: {other:?}"),
    }
}

fn await_cluster<F>(client: &mut Client, timeout: Duration, what: &str, mut pred: F)
where
    F: FnMut(&cots_core::report::ClusterReport) -> bool,
{
    let deadline = Instant::now() + timeout;
    loop {
        let report = cluster_report(client);
        if pred(&report) {
            return;
        }
        assert!(
            Instant::now() < deadline,
            "timed out waiting for {what}: {report:?}"
        );
        std::thread::sleep(Duration::from_millis(50));
    }
}

#[test]
fn primary_sigkill_promotes_standby_without_restarts() {
    let base: PathBuf =
        std::env::temp_dir().join(format!("cots-failover-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let primary_dir = base.join("primary");
    let standby_dir = base.join("standby");
    let full = StreamSpec::zipf(TOTAL, ALPHABET, ALPHA, SEED).generate();

    // The pair needs fixed ports: the primary ships to the standby's
    // address, and the coordinator knows both through its member spec.
    let primary_addr = format!("127.0.0.1:{}", reserve_port());
    let standby_addr = format!("127.0.0.1:{}", reserve_port());
    let standby = spawn_member(&standby_addr, Some(&standby_dir), true, None);
    let mut primary = spawn_member(
        &primary_addr,
        Some(&primary_dir),
        false,
        Some(&standby_addr),
    );
    let plain = spawn_member("127.0.0.1:0", None, false, None);

    let pair_spec = format!("{primary_addr}:{standby_addr}");
    let coord_args: Vec<String> = [
        "--addr",
        "127.0.0.1:0",
        "--members",
        &format!("{},{pair_spec}", plain.addr),
        "--capacity",
        "1024",
        "--pull-ms",
        "20",
        "--timeout-ms",
        "500",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let coord = spawn(env!("CARGO_BIN_EXE_cots-coord"), &coord_args);
    let mut client = Client::connect(&coord.addr).unwrap();

    // ---- Phase 1: healthy pair, cluster quiesces to staleness 0. ----
    let mut acked: Vec<u64> = Vec::with_capacity(TOTAL);
    for batch in full[..PHASE1].chunks(BATCH) {
        client.ingest(batch).unwrap();
        acked.extend_from_slice(batch);
    }
    await_cluster(&mut client, Duration::from_secs(30), "phase-1 quiescence", |r| {
        r.captured_total == PHASE1 as u64 && r.staleness == 0
    });
    let healthy = cluster_report(&mut client);
    assert_eq!(healthy.promotions, 0);
    let pair = healthy
        .members
        .iter()
        .find(|m| m.addr == primary_addr)
        .expect("pair slot is reported");
    assert_eq!(pair.standby.as_deref(), Some(standby_addr.as_str()));

    // Let the shipper drain so the pre-kill backlog is fully replicated
    // (the lost tail is then only what the kill itself cuts off).
    let mut pclient = Client::connect(&primary_addr).unwrap();
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        let stats = pclient.stats().unwrap();
        if stats
            .repl
            .as_ref()
            .is_some_and(|r| r.connected && r.unacked_batches == 0)
        {
            break;
        }
        assert!(Instant::now() < deadline, "shipper never drained: {stats:?}");
        std::thread::sleep(Duration::from_millis(20));
    }
    drop(pclient);

    // ---- Phase 2: SIGKILL the primary mid-stream. ----
    let mut uncertain: Vec<u64> = Vec::new();
    for (i, batch) in full[PHASE1..PHASE1 + PHASE2].chunks(BATCH).enumerate() {
        if i * BATCH == KILL_AFTER {
            primary.child.kill().unwrap();
            primary.child.wait().unwrap();
        }
        match client.ingest(batch) {
            Ok(_) => acked.extend_from_slice(batch),
            // Delivery uncertain (wire died mid-request): never re-sent,
            // the keys stay inside the staleness bound.
            Err(_) => uncertain.extend_from_slice(batch),
        }
    }
    assert!(
        uncertain.len() <= 3 * BATCH,
        "expected at most a few uncertain batches around the kill, got {} keys",
        uncertain.len()
    );

    // ---- Failover: the standby is promoted, routing flips, and the
    // cluster reports itself healthy again — all without restarting
    // any process. ----
    await_cluster(&mut client, Duration::from_secs(30), "standby promotion", |r| {
        r.promotions == 1 && r.degraded_members == 0
    });
    let promoted = cluster_report(&mut client);
    let slot = promoted
        .members
        .iter()
        .find(|m| m.promotions == 1)
        .expect("promoted slot is reported");
    assert_eq!(slot.addr, standby_addr, "routing flipped to the standby");
    assert_eq!(slot.standby, None, "promoted slot has no standby left");

    // ---- Phase 3: keep streaming into the promoted topology. ----
    for batch in full[PHASE1 + PHASE2..].chunks(BATCH) {
        match client.ingest(batch) {
            Ok(_) => acked.extend_from_slice(batch),
            Err(_) => uncertain.extend_from_slice(batch),
        }
    }

    // Converge to a stable (captured, staleness) floor.
    let mut floor = None;
    let deadline = Instant::now() + Duration::from_secs(30);
    let mut stable = 0;
    while stable < 10 {
        let r = cluster_report(&mut client);
        let pair = (r.captured_total, r.staleness);
        if floor == Some(pair) {
            stable += 1;
        } else {
            floor = Some(pair);
            stable = 0;
        }
        assert!(
            Instant::now() < deadline,
            "cluster never converged to a stable floor: {r:?}"
        );
        std::thread::sleep(Duration::from_millis(100));
    }
    let (captured, staleness) = floor.unwrap();

    // Loss accounting: every acked key is either captured or inside the
    // staleness bound, nothing was invented, and the permanent floor is
    // a bounded window around the kill (the un-acked WAL tail plus the
    // uncertain batches) — phase 1's replicated mass must have survived
    // wholesale, not be part of the loss.
    assert!(
        captured + staleness >= acked.len() as u64,
        "acked mass escaped the envelope: captured {captured} + staleness {staleness} \
         < acked {}",
        acked.len()
    );
    assert!(
        captured <= (acked.len() + uncertain.len()) as u64,
        "cluster captured {captured} keys but only {} were even sent",
        acked.len() + uncertain.len()
    );
    assert!(
        (staleness as usize) <= uncertain.len() + 12_000,
        "loss is not a bounded window around the kill: staleness {staleness}, \
         uncertain {}",
        uncertain.len()
    );

    // ---- Final envelope vs exact truth. ----
    let sent_truth = ExactCounter::from_stream(&full);
    let acked_truth = ExactCounter::from_stream(&acked);
    let (entries, total, stamp) = client.query(QueryReq::TopK { k: 20 }).unwrap();
    assert_eq!(total, captured);
    assert_eq!(stamp.staleness, staleness);
    assert!(!entries.is_empty());
    for e in &entries {
        let sent_k = sent_truth.count(&e.item);
        assert!(
            e.count - e.error <= sent_k,
            "over-report: key {} guaranteed {} but at most {sent_k} sent",
            e.item,
            e.count - e.error
        );
        let acked_k = acked_truth.count(&e.item);
        assert!(
            acked_k <= e.count + stamp.staleness,
            "under-report: key {} acked {acked_k} but count {} + staleness {} \
             cannot cover it",
            e.item,
            e.count,
            stamp.staleness
        );
    }

    // ---- Teardown. ----
    client.shutdown().unwrap();
    drop(client);
    let mut coord_child = coord.child;
    coord_child.wait().unwrap();
    for proc_ in [plain, standby] {
        let mut child = proc_.child;
        if let Ok(mut down) = Client::connect(&proc_.addr) {
            let _ = down.shutdown();
        }
        let _ = child.wait();
    }
    let _ = std::fs::remove_dir_all(&base);
}
