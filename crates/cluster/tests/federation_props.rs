//! Property tests for the federated answer path: under *arbitrary*
//! partitions of an arbitrary stream across 1–5 members, every answer
//! the coordinator-side merge produces must stay inside the summed
//! count ± error envelope against exact ground truth.
//!
//! This exercises the same code the live coordinator runs —
//! `Topology::member_of` for routing, per-member Space-Saving
//! summaries, `federate::federate` for the merge and
//! `federate::answer` for the query shapes — without sockets, so the
//! property is about the math, not the transport.

use proptest::prelude::*;

use cots_cluster::federate;
use cots_cluster::Topology;
use cots_core::{FrequencyCounter, QueryableSummary, Snapshot, SummaryConfig, Threshold};
use cots_datagen::ExactCounter;
use cots_sequential::SpaceSaving;
use cots_serve::{QueryReq, QueryStamp, Response};

/// Run `stream` through `members` Space-Saving summaries of `capacity`
/// counters each, routed exactly the way the coordinator routes keys.
fn member_snapshots(stream: &[u64], members: usize, capacity: usize) -> Vec<Snapshot<u64>> {
    let addrs: Vec<String> = (0..members).map(|i| format!("m{i}:1")).collect();
    let topology = Topology::new(addrs).unwrap();
    let mut counters: Vec<SpaceSaving<u64>> = (0..members)
        .map(|_| SpaceSaving::new(SummaryConfig::with_capacity(capacity).unwrap()))
        .collect();
    for &key in stream {
        counters[topology.member_of(key)].process(key);
    }
    counters.iter().map(|c| c.snapshot()).collect()
}

fn stamp(captured_total: u64, staleness: u64) -> QueryStamp {
    QueryStamp {
        epoch: 1,
        captured_total,
        staleness,
        rotations: None,
    }
}

/// Streams skewed enough that the small per-member capacity actually
/// evicts: keys drawn from a modest universe with repetition.
fn stream_strategy() -> impl Strategy<Value = Vec<u64>> {
    proptest::collection::vec(0u64..200, 0..2_000)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The federated envelope: for every key the merged summary tracks,
    /// `count − error ≤ true ≤ count`, and the merged mass equals the
    /// stream length. Holds for any member count and tight capacities.
    #[test]
    fn federated_estimates_bound_exact_truth(
        stream in stream_strategy(),
        members in 1usize..=5,
        capacity in 8usize..=64,
    ) {
        let parts = member_snapshots(&stream, members, capacity);
        let truth = ExactCounter::from_stream(&stream);
        let merged = federate::federate(&parts, capacity * members).unwrap();
        prop_assert_eq!(merged.total(), stream.len() as u64);
        for entry in merged.entries() {
            let exact = truth.count(&entry.item);
            prop_assert!(
                entry.count >= exact,
                "over-estimate violated: key {} count {} < true {}",
                entry.item, entry.count, exact
            );
            prop_assert!(
                entry.count - entry.error <= exact,
                "lower envelope violated: key {} count {} error {} true {}",
                entry.item, entry.count, entry.error, exact
            );
        }
    }

    /// Point answers through the coordinator's answer path stay inside
    /// the same envelope, and the stamp passes through untouched.
    #[test]
    fn point_answers_stay_inside_the_envelope(
        stream in stream_strategy(),
        members in 1usize..=5,
        key in 0u64..200,
    ) {
        let capacity = 32;
        let parts = member_snapshots(&stream, members, capacity);
        let truth = ExactCounter::from_stream(&stream);
        let merged = federate::federate(&parts, capacity * members).unwrap();
        let total = merged.total();
        match federate::answer(&merged, QueryReq::Point { key }, stamp(total, 7)) {
            Response::Answer { entries, total: t, stamp } => {
                prop_assert_eq!(t, stream.len() as u64);
                prop_assert_eq!(stamp.staleness, 7);
                let exact = truth.count(&key);
                match entries.as_slice() {
                    [] => {
                        // Untracked keys are bounded by the summed
                        // absent bound, which merge folds into errors;
                        // all we require is the summary never tracked
                        // more mass than the stream holds.
                        prop_assert!(exact <= stream.len() as u64);
                    }
                    [entry] => {
                        prop_assert_eq!(entry.item, key);
                        prop_assert!(entry.count >= exact);
                        prop_assert!(entry.count - entry.error <= exact);
                    }
                    more => prop_assert!(false, "point answer returned {} entries", more.len()),
                }
            }
            other => prop_assert!(false, "unexpected response: {:?}", other),
        }
    }

    /// Frequent-item recall: every key whose true frequency clears
    /// `phi * N + summed error headroom` must appear in the federated
    /// frequent answer (no false negatives above the noise floor).
    #[test]
    fn frequent_answers_recall_heavy_hitters(
        stream in proptest::collection::vec(0u64..50, 100..1_500),
        members in 1usize..=4,
    ) {
        let capacity = 48;
        let phi = 0.1_f64;
        let parts = member_snapshots(&stream, members, capacity);
        let truth = ExactCounter::from_stream(&stream);
        let merged = federate::federate(&parts, capacity * members).unwrap();
        let max_error = merged.entries().iter().map(|e| e.error).max().unwrap_or(0);
        let reported: Vec<u64> = match federate::answer(
            &merged,
            QueryReq::Frequent { phi },
            stamp(merged.total(), 0),
        ) {
            Response::Answer { entries, .. } => entries.iter().map(|e| e.item).collect(),
            other => panic!("unexpected: {other:?}"),
        };
        let n = stream.len() as u64;
        let bar = (phi * n as f64).floor() as u64 + max_error;
        for (item, exact) in truth.frequent(Threshold::Count(0)) {
            if exact > bar {
                prop_assert!(
                    reported.contains(&item),
                    "heavy hitter {} (true {}) missing above bar {}",
                    item, exact, bar
                );
            }
        }
    }
}
