//! Cluster topology: the member list and the key-routing function.
//!
//! Routing reuses the exact hash the single-node shard router uses
//! ([`cots_core::MulHash`]), applied modulo the member count. The merge
//! algebra is partition-agnostic — `merge_snapshots` keeps the
//! Space-Saving envelope under *any* assignment of keys to members — so
//! correctness never depends on this function; it only shapes load.
//! That is also why spillover routing (sending a primary's keys to the
//! next live member while the primary is down) is sound.

use cots_core::{CotsError, MulHash, Result};

/// Parse one `--members` entry into `(primary, standby)`.
///
/// The unambiguous spelling is `PRIMARY/STANDBY` (slash-separated —
/// `,` already separates members in a `--members` list): each side is
/// taken verbatim as one address, so IPv6 (`[::1]:7001`) and any host
/// containing `:` work. A single address with no slash is a member with
/// no standby.
///
/// The legacy colon form is still accepted for IPv4/hostname pairs.
/// Because addresses themselves contain `:`, the split is resolved by
/// shape — a segment that is all digits is a port, everything else
/// starts a new address:
///
/// * `a` / `host:1234` — a single member, no standby;
/// * `a:b` — **a pair of bare tokens** (two addresses, not
///   host-plus-named-port; use the comma form when that reading is
///   wrong);
/// * `host:1234:standby`, `primary:host:1234` — mixed pairs;
/// * `host:1234:host:5678` — a pair of full addresses.
///
/// Bracketed IPv6 addresses are rejected in the colon form with a
/// pointer at the slash form.
pub fn parse_member_spec(spec: &str) -> Result<(String, Option<String>)> {
    let invalid = |hint: &str| {
        CotsError::InvalidConfig(format!(
            "cannot parse member spec `{spec}` ({hint})"
        ))
    };
    if let Some((primary, standby)) = spec.split_once('/') {
        // Slash form: both sides are verbatim addresses.
        if primary.is_empty() || standby.is_empty() || standby.contains('/') {
            return Err(invalid("expected PRIMARY/STANDBY with non-empty addresses"));
        }
        return Ok((primary.to_string(), Some(standby.to_string())));
    }
    if spec.contains('[') || spec.contains(']') {
        // A bracketed (IPv6) address splits into >4 colon segments, and
        // a *pair* of them is inexpressible by shape. Single bracketed
        // addresses are fine verbatim; pairs must use the slash form.
        return match spec.split_once(']') {
            Some((host, rest))
                if host.starts_with('[')
                    && !host[1..].is_empty()
                    && (rest.is_empty()
                        || rest
                            .strip_prefix(':')
                            .is_some_and(|p| !p.is_empty() && p.bytes().all(|b| b.is_ascii_digit()))) =>
            {
                Ok((spec.to_string(), None))
            }
            _ => Err(invalid(
                "bracketed IPv6 pairs must be written as PRIMARY/STANDBY",
            )),
        };
    }
    let is_port = |s: &str| !s.is_empty() && s.bytes().all(|b| b.is_ascii_digit());
    let segs: Vec<&str> = spec.split(':').collect();
    let parsed = match segs.as_slice() {
        [a] if !a.is_empty() => Some((a.to_string(), None)),
        [h, p] if is_port(p) => Some((format!("{h}:{p}"), None)),
        [a, b] if !a.is_empty() && !b.is_empty() => {
            Some((a.to_string(), Some(b.to_string())))
        }
        [h, p, b] if is_port(p) && !b.is_empty() => {
            Some((format!("{h}:{p}"), Some(b.to_string())))
        }
        [a, h, p] if is_port(p) && !a.is_empty() => {
            Some((a.to_string(), Some(format!("{h}:{p}"))))
        }
        [h1, p1, h2, p2] if is_port(p1) && is_port(p2) => {
            Some((format!("{h1}:{p1}"), Some(format!("{h2}:{p2}"))))
        }
        _ => None,
    };
    parsed.ok_or_else(|| invalid("expected ADDR or PRIMARY/STANDBY"))
}

/// Parse a full `--members` list into parallel `(primaries, standbys)`
/// vectors; slot `i` of `standbys` is `None` for unreplicated members.
pub fn parse_members(specs: &[String]) -> Result<(Vec<String>, Vec<Option<String>>)> {
    let mut primaries = Vec::with_capacity(specs.len());
    let mut standbys = Vec::with_capacity(specs.len());
    for spec in specs {
        let (primary, standby) = parse_member_spec(spec)?;
        primaries.push(primary);
        standbys.push(standby);
    }
    Ok((primaries, standbys))
}

/// An ordered list of member addresses plus the routing function.
#[derive(Debug, Clone)]
pub struct Topology {
    members: Vec<String>,
}

impl Topology {
    /// Build a topology from `host:port` strings. Errors on an empty
    /// list — a coordinator with no members cannot answer anything.
    pub fn new(members: Vec<String>) -> Result<Self> {
        if members.is_empty() {
            return Err(CotsError::InvalidConfig(
                "cluster topology needs at least one member".into(),
            ));
        }
        Ok(Self { members })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the topology has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Address of member `idx`.
    pub fn addr(&self, idx: usize) -> &str {
        self.members.get(idx).map(String::as_str).unwrap_or("")
    }

    /// All member addresses, in index order.
    pub fn addrs(&self) -> &[String] {
        &self.members
    }

    /// The member that owns `key`: same multiplicative hash as the
    /// single-node shard router, modulo the member count.
    pub fn member_of(&self, key: u64) -> usize {
        (MulHash::hash(&key) % self.members.len() as u64) as usize
    }

    /// Candidate delivery order for a batch owned by `primary`: the
    /// primary itself, then each other member in ring order (the
    /// spillover sequence when earlier candidates are down).
    pub fn route_order(&self, primary: usize) -> impl Iterator<Item = usize> + '_ {
        let n = self.members.len();
        (0..n).map(move |step| (primary + step) % n)
    }

    /// Partition `keys` by owning member, preserving arrival order
    /// within each part.
    pub fn partition(&self, keys: &[u64]) -> Vec<Vec<u64>> {
        let mut parts = vec![Vec::new(); self.members.len()];
        for &key in keys {
            let owner = self.member_of(key);
            if let Some(part) = parts.get_mut(owner) {
                part.push(key);
            }
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_topology_is_rejected() {
        assert!(Topology::new(Vec::new()).is_err());
    }

    #[test]
    fn partition_covers_every_key_exactly_once() {
        let topo = Topology::new(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let keys: Vec<u64> = (0..10_000).collect();
        let parts = topo.partition(&keys);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, keys.len());
        for (idx, part) in parts.iter().enumerate() {
            for key in part {
                assert_eq!(topo.member_of(*key), idx);
            }
        }
    }

    #[test]
    fn routing_spreads_keys_reasonably() {
        let topo = Topology::new(vec!["a".into(), "b".into(), "c".into(), "d".into()]).unwrap();
        let parts = topo.partition(&(0..40_000u64).collect::<Vec<_>>());
        for part in &parts {
            // Perfect balance would be 10 000; MulHash keeps every
            // member within a loose band.
            assert!(part.len() > 7_000 && part.len() < 13_000, "{}", part.len());
        }
    }

    #[test]
    fn route_order_visits_every_member_once_starting_at_primary() {
        let topo = Topology::new(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let order: Vec<usize> = topo.route_order(1).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn member_specs_parse_by_shape() {
        assert_eq!(parse_member_spec("a").unwrap(), ("a".into(), None));
        assert_eq!(
            parse_member_spec("127.0.0.1:7001").unwrap(),
            ("127.0.0.1:7001".into(), None)
        );
        assert_eq!(
            parse_member_spec("a:b").unwrap(),
            ("a".into(), Some("b".into()))
        );
        assert_eq!(
            parse_member_spec("127.0.0.1:7001:127.0.0.1:8001").unwrap(),
            ("127.0.0.1:7001".into(), Some("127.0.0.1:8001".into()))
        );
        assert_eq!(
            parse_member_spec("127.0.0.1:7001:b").unwrap(),
            ("127.0.0.1:7001".into(), Some("b".into()))
        );
        assert_eq!(
            parse_member_spec("a:127.0.0.1:8001").unwrap(),
            ("a".into(), Some("127.0.0.1:8001".into()))
        );
        assert!(parse_member_spec("").is_err());
        assert!(parse_member_spec("a:b:c:d:e").is_err());
    }

    #[test]
    fn slash_and_ipv6_specs_parse_unambiguously() {
        // The slash form takes each side verbatim.
        assert_eq!(
            parse_member_spec("a/b").unwrap(),
            ("a".into(), Some("b".into()))
        );
        assert_eq!(
            parse_member_spec("127.0.0.1:7001/127.0.0.1:8001").unwrap(),
            ("127.0.0.1:7001".into(), Some("127.0.0.1:8001".into()))
        );
        // IPv6 works as a single member and as a slash pair.
        assert_eq!(
            parse_member_spec("[::1]:7001").unwrap(),
            ("[::1]:7001".into(), None)
        );
        assert_eq!(
            parse_member_spec("[::1]").unwrap(),
            ("[::1]".into(), None)
        );
        assert_eq!(
            parse_member_spec("[::1]:7001/[::1]:8001").unwrap(),
            ("[::1]:7001".into(), Some("[::1]:8001".into()))
        );
        // Malformed slashes and colon-form IPv6 pairs are rejected.
        assert!(parse_member_spec("a/").is_err());
        assert!(parse_member_spec("/b").is_err());
        assert!(parse_member_spec("a/b/c").is_err());
        assert!(parse_member_spec("[::1]:7001:[::1]:8001").is_err());
        assert!(parse_member_spec("[]").is_err());
        assert!(parse_member_spec("[::1]:port").is_err());

        let (primaries, standbys) = parse_members(&[
            "127.0.0.1:7001:127.0.0.1:8001".to_string(),
            "127.0.0.1:7002".to_string(),
        ])
        .unwrap();
        assert_eq!(primaries, vec!["127.0.0.1:7001", "127.0.0.1:7002"]);
        assert_eq!(standbys, vec![Some("127.0.0.1:8001".to_string()), None]);
    }

    #[test]
    fn single_member_owns_everything() {
        let topo = Topology::new(vec!["only".into()]).unwrap();
        for key in 0..100u64 {
            assert_eq!(topo.member_of(key), 0);
        }
    }
}
