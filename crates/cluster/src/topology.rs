//! Cluster topology: the member list and the key-routing function.
//!
//! Routing reuses the exact hash the single-node shard router uses
//! ([`cots_core::MulHash`]), applied modulo the member count. The merge
//! algebra is partition-agnostic — `merge_snapshots` keeps the
//! Space-Saving envelope under *any* assignment of keys to members — so
//! correctness never depends on this function; it only shapes load.
//! That is also why spillover routing (sending a primary's keys to the
//! next live member while the primary is down) is sound.

use cots_core::{CotsError, MulHash, Result};

/// An ordered list of member addresses plus the routing function.
#[derive(Debug, Clone)]
pub struct Topology {
    members: Vec<String>,
}

impl Topology {
    /// Build a topology from `host:port` strings. Errors on an empty
    /// list — a coordinator with no members cannot answer anything.
    pub fn new(members: Vec<String>) -> Result<Self> {
        if members.is_empty() {
            return Err(CotsError::InvalidConfig(
                "cluster topology needs at least one member".into(),
            ));
        }
        Ok(Self { members })
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.members.len()
    }

    /// True when the topology has no members (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.members.is_empty()
    }

    /// Address of member `idx`.
    pub fn addr(&self, idx: usize) -> &str {
        self.members.get(idx).map(String::as_str).unwrap_or("")
    }

    /// All member addresses, in index order.
    pub fn addrs(&self) -> &[String] {
        &self.members
    }

    /// The member that owns `key`: same multiplicative hash as the
    /// single-node shard router, modulo the member count.
    pub fn member_of(&self, key: u64) -> usize {
        (MulHash::hash(&key) % self.members.len() as u64) as usize
    }

    /// Candidate delivery order for a batch owned by `primary`: the
    /// primary itself, then each other member in ring order (the
    /// spillover sequence when earlier candidates are down).
    pub fn route_order(&self, primary: usize) -> impl Iterator<Item = usize> + '_ {
        let n = self.members.len();
        (0..n).map(move |step| (primary + step) % n)
    }

    /// Partition `keys` by owning member, preserving arrival order
    /// within each part.
    pub fn partition(&self, keys: &[u64]) -> Vec<Vec<u64>> {
        let mut parts = vec![Vec::new(); self.members.len()];
        for &key in keys {
            let owner = self.member_of(key);
            if let Some(part) = parts.get_mut(owner) {
                part.push(key);
            }
        }
        parts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_topology_is_rejected() {
        assert!(Topology::new(Vec::new()).is_err());
    }

    #[test]
    fn partition_covers_every_key_exactly_once() {
        let topo = Topology::new(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let keys: Vec<u64> = (0..10_000).collect();
        let parts = topo.partition(&keys);
        assert_eq!(parts.len(), 3);
        let total: usize = parts.iter().map(Vec::len).sum();
        assert_eq!(total, keys.len());
        for (idx, part) in parts.iter().enumerate() {
            for key in part {
                assert_eq!(topo.member_of(*key), idx);
            }
        }
    }

    #[test]
    fn routing_spreads_keys_reasonably() {
        let topo = Topology::new(vec!["a".into(), "b".into(), "c".into(), "d".into()]).unwrap();
        let parts = topo.partition(&(0..40_000u64).collect::<Vec<_>>());
        for part in &parts {
            // Perfect balance would be 10 000; MulHash keeps every
            // member within a loose band.
            assert!(part.len() > 7_000 && part.len() < 13_000, "{}", part.len());
        }
    }

    #[test]
    fn route_order_visits_every_member_once_starting_at_primary() {
        let topo = Topology::new(vec!["a".into(), "b".into(), "c".into()]).unwrap();
        let order: Vec<usize> = topo.route_order(1).collect();
        assert_eq!(order, vec![1, 2, 0]);
    }

    #[test]
    fn single_member_owns_everything() {
        let topo = Topology::new(vec!["only".into()]).unwrap();
        for key in 0..100u64 {
            assert_eq!(topo.member_of(key), 0);
        }
    }
}
