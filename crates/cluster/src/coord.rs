//! The coordinator: key-routed ingest fan-out, periodic member
//! snapshot pulls, and federated answers.
//!
//! ```text
//! clients ──INGEST──▶ Router (per conn) ──key-route──▶ member A
//!    │                      │  spillover when down ──▶ member B
//!    │ QUERY/STATS          ▼
//!    └──────────▶ SnapshotPublisher ◀─merge─ pullers (1/member,
//!                   (federated)               SNAPSHOT_PAGE deltas)
//! ```
//!
//! **Staleness accounting.** `forwarded` counts keys some member
//! acknowledged. The federated snapshot's `captured_total` sums what
//! the merged member snapshots had applied at capture. Their difference
//! is the cluster staleness bound stamped on every answer: an
//! acknowledged key is either inside the summary or inside that bound.
//! When a member dies with acknowledged-but-not-yet-durable keys, the
//! bound stops shrinking to zero — the permanent floor is exactly the
//! (bounded) loss, so degraded answers stay honest instead of quietly
//! under-reporting.
//!
//! **Delivery semantics.** A batch is routed per key into per-member
//! coalescing buffers and acknowledged as *accepted* — `forwarded`
//! counts the keys immediately, so the staleness bound covers them
//! from the ack onward. A buffer at the coalesce threshold (or any
//! buffered key, once a read/stats/connection-end barrier hits) is
//! delivered as one full-size frame to its primary or, when the
//! primary cannot be reached *before anything was sent* (connect
//! refused), spilled to the next live member — sound because the merge
//! envelope holds under any key partition. If a connection dies
//! mid-request, the part's fate is unknown; the coordinator reports an
//! error rather than re-sending (re-delivery would silently
//! double-count), and the accepted-but-lost keys stay inside the
//! staleness bound forever. `OVERLOADED` from a member is absorbed by
//! bounded retry here and never causes re-routing of a delivered
//! batch.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use cots::publish::SnapshotPublisher;
use cots_core::{ClusterReport, CotsError, Result, ServiceReport, ShardReport};
use cots_serve::{Client, QueryReq, QueryStamp, Request, Response};

use crate::federate;
use crate::fetch::{fetch_snapshot, Fetched};
use crate::member::MemberTracker;
use crate::topology::{parse_members, Topology};

/// Consecutive failed contacts before the coordinator promotes a
/// slot's standby. One failure is routinely a blip (restart, GC-less
/// but still slow fsync, transient refusal under backoff); two in a
/// row with backoff between them means the primary is really gone.
const PROMOTE_AFTER: u32 = 2;

/// Coordinator tuning knobs.
#[derive(Debug, Clone)]
pub struct CoordConfig {
    /// Member specs (`host:port`, or `PRIMARY/STANDBY` for a replica
    /// pair — see [`crate::topology::parse_member_spec`]), index order
    /// = routing order.
    pub members: Vec<String>,
    /// Counter budget of the federated summary.
    pub capacity: usize,
    /// Pause between snapshot pulls per member.
    pub pull_interval: Duration,
    /// Read timeout on member connections.
    pub io_timeout: Duration,
    /// How long one batch part may retry `OVERLOADED` before the
    /// coordinator gives up on that member and spills.
    pub forward_deadline: Duration,
    /// Keys buffered per member before a forward flush (`0` = deliver
    /// every batch immediately). With coalescing on, `INGEST` acks mean
    /// *accepted*: the keys are inside the staleness bound from that
    /// moment, and a query, stats call, or connection end flushes them.
    /// Without it, frames forwarded to each member shrink as `1/N`
    /// members, which caps per-member drain-group size and erases the
    /// cluster's throughput headroom.
    pub coalesce_keys: usize,
}

impl Default for CoordConfig {
    fn default() -> Self {
        Self {
            members: Vec::new(),
            capacity: 1_000,
            pull_interval: Duration::from_millis(50),
            io_timeout: Duration::from_secs(2),
            forward_deadline: Duration::from_secs(10),
            coalesce_keys: 0,
        }
    }
}

/// A running coordinator: trackers, pullers, and the federated
/// publisher.
pub struct Coordinator {
    topology: Topology,
    members: Vec<Arc<MemberTracker>>,
    publisher: Arc<SnapshotPublisher<u64>>,
    capacity: usize,
    io_timeout: Duration,
    forward_deadline: Duration,
    coalesce_keys: usize,
    forwarded: AtomicU64,
    ingest_frames: AtomicU64,
    rejected_frames: AtomicU64,
    queries: AtomicU64,
    merges: AtomicU64,
    merge_lock: Mutex<()>,
    shutdown: AtomicBool,
    pullers: Mutex<Vec<JoinHandle<()>>>,
}

/// Outcome of one delivery attempt to one member.
enum SendOutcome {
    /// The member acknowledged every key.
    Acked,
    /// Could not reach the member; nothing was sent (safe to spill).
    Down,
    /// The member is alive but kept answering `OVERLOADED` past the
    /// deadline (safe to spill — an overload rejection enqueues
    /// nothing).
    Saturated,
    /// The connection died after the request was sent; the part may or
    /// may not have been applied (NOT safe to re-send).
    Uncertain,
}

impl Coordinator {
    /// Validate the config and spawn one puller thread per member.
    pub fn start(config: CoordConfig) -> Result<Arc<Self>> {
        if config.capacity == 0 {
            return Err(CotsError::InvalidConfig(
                "coordinator capacity must be positive".into(),
            ));
        }
        let (primaries, standbys) = parse_members(&config.members)?;
        let topology = Topology::new(primaries.clone())?;
        let members: Vec<Arc<MemberTracker>> = primaries
            .into_iter()
            .zip(standbys)
            .enumerate()
            .map(|(i, (addr, standby))| Arc::new(MemberTracker::new(i, addr, standby)))
            .collect();
        let coord = Arc::new(Self {
            topology,
            members,
            publisher: Arc::new(SnapshotPublisher::new()),
            capacity: config.capacity,
            io_timeout: config.io_timeout,
            forward_deadline: config.forward_deadline,
            coalesce_keys: config.coalesce_keys,
            forwarded: AtomicU64::new(0),
            ingest_frames: AtomicU64::new(0),
            rejected_frames: AtomicU64::new(0),
            queries: AtomicU64::new(0),
            merges: AtomicU64::new(0),
            merge_lock: Mutex::new(()),
            shutdown: AtomicBool::new(false),
            pullers: Mutex::new(Vec::new()),
        });
        let mut pullers = Vec::new();
        for idx in 0..coord.members.len() {
            let c = coord.clone();
            let interval = config.pull_interval;
            pullers.push(
                std::thread::Builder::new()
                    .name(format!("cots-puller-{idx}"))
                    .spawn(move || c.puller_loop(idx, interval))
                    .map_err(|e| CotsError::Report(format!("spawn puller: {e}")))?,
            );
        }
        *coord.pullers.lock() = pullers;
        Ok(coord)
    }

    /// The member topology.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Has a shutdown been requested?
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::Acquire)
    }

    /// Flag shutdown; pullers notice within one pull interval.
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Release);
    }

    /// Flag shutdown and join the puller threads.
    pub fn drain(&self) {
        self.begin_shutdown();
        let handles: Vec<JoinHandle<()>> = std::mem::take(&mut *self.pullers.lock());
        for h in handles {
            let _ = h.join();
        }
    }

    /// A fresh per-connection router (owns its member connections and
    /// coalescing buffers).
    pub fn router(&self) -> Router {
        Router {
            conns: (0..self.members.len()).map(|_| None).collect(),
            conn_addrs: (0..self.members.len()).map(|_| String::new()).collect(),
            pending: (0..self.members.len()).map(|_| Vec::new()).collect(),
        }
    }

    /// One puller: keep a connection to the slot's current primary,
    /// pull snapshot deltas, re-merge on change. The health checks live
    /// here too: repeated failures hand the slot to [`Self::maybe_promote`],
    /// and because the connection target is re-read from the tracker on
    /// every reconnect, a completed promotion flips this puller (and
    /// every ingest router) to the new primary without restarts.
    fn puller_loop(&self, idx: usize, interval: Duration) {
        let Some(tracker) = self.members.get(idx).cloned() else {
            return;
        };
        let mut conn: Option<Client> = None;
        let mut conn_addr = String::new();
        while !self.shutdown_requested() {
            if !tracker.ready(Instant::now()) {
                std::thread::sleep(Duration::from_millis(10));
                continue;
            }
            let addr = tracker.addr();
            if conn_addr != addr {
                conn = None;
            }
            if conn.is_none() {
                match Client::connect(&addr) {
                    Ok(mut c) => {
                        let _ = c.set_timeout(Some(self.io_timeout));
                        conn = Some(c);
                        conn_addr = addr;
                    }
                    Err(_) => {
                        tracker.record_failure(Instant::now());
                        self.maybe_promote(&tracker);
                        continue;
                    }
                }
            }
            let Some(client) = conn.as_mut() else { continue };
            match fetch_snapshot(client, tracker.last_epoch()) {
                Ok(Fetched::Changed(fetched)) => {
                    tracker.record_pull(fetched);
                    self.remerge();
                }
                Ok(Fetched::Unchanged { .. }) => tracker.record_unchanged(),
                Err(_) => {
                    conn = None;
                    tracker.record_failure(Instant::now());
                    self.maybe_promote(&tracker);
                    continue;
                }
            }
            // Piggyback a STATS pull on the same connection: the
            // primary's reported un-acked replication tail is what a
            // promotion would lose, so it must be current when the
            // primary dies, not reconstructed after.
            if let Some(client) = conn.as_mut() {
                if let Ok(stats) = client.stats() {
                    tracker.record_repl_unacked(
                        stats.repl.as_ref().map_or(0, |r| r.unacked_keys),
                    );
                }
            }
            std::thread::sleep(interval);
        }
    }

    /// Promote the slot's standby once the primary looks dead. The
    /// standby must acknowledge `REPL_PROMOTE` before routing flips —
    /// a dead standby leaves the slot degraded-but-honest (its keys
    /// stay inside the staleness bound) rather than routed into a
    /// void. After the flip the staleness envelope widens by exactly
    /// the un-acked WAL tail, automatically: the slot's `forwarded`
    /// counter is untouched while the promoted standby's
    /// `captured_total` is missing the tail the old primary never
    /// shipped — the difference *is* the loss, counted once.
    fn maybe_promote(&self, tracker: &MemberTracker) {
        if tracker.consecutive_failures() < PROMOTE_AFTER {
            return;
        }
        let Some(standby) = tracker.standby() else {
            return;
        };
        let Ok(mut client) = Client::connect(&standby) else {
            return;
        };
        let _ = client.set_timeout(Some(self.io_timeout));
        if let Ok(Response::ReplAck { .. }) = client.call(&Request::ReplPromote) {
            if tracker.complete_promotion() {
                self.remerge();
            }
        }
    }

    /// Merge every member's last good snapshot and publish the result.
    fn remerge(&self) {
        // Serialize merges so (snapshot, captured_total) pairs publish
        // in a consistent order.
        let _guard = self.merge_lock.lock();
        let mut parts = Vec::new();
        let mut captured = 0u64;
        for member in &self.members {
            if let Some(fetched) = member.last() {
                parts.push(fetched.snapshot.clone());
                captured = captured.saturating_add(fetched.captured_total);
            }
        }
        if let Ok(merged) = federate::federate(&parts, self.capacity) {
            self.publisher.publish(merged, captured, None);
            self.merges.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Route one `INGEST` batch across the membership.
    ///
    /// Keys land in the router's per-member buffers; a buffer at or
    /// over the coalesce threshold is delivered as one full-size frame.
    /// The ack means *accepted*: `forwarded` counts the keys from this
    /// moment, so the staleness bound covers them while they sit in a
    /// buffer, in flight, or in a member's queue — and keeps covering
    /// them forever if a later flush fails, which is exactly the
    /// permanent floor degraded answers are stamped with.
    pub fn forward(&self, router: &mut Router, keys: &[u64]) -> Response {
        self.ingest_frames.fetch_add(1, Ordering::Relaxed);
        if keys.is_empty() {
            return Response::IngestAck { enqueued: 0 };
        }
        for &key in keys {
            router.pending[self.topology.member_of(key)].push(key);
        }
        self.forwarded.fetch_add(keys.len() as u64, Ordering::Relaxed);
        let threshold = self.coalesce_keys.max(1);
        let deadline = Instant::now() + self.forward_deadline;
        for primary in 0..router.pending.len() {
            if router.pending[primary].len() < threshold {
                continue;
            }
            let mut part = std::mem::take(&mut router.pending[primary]);
            let delivery = self.deliver(router, primary, &part, deadline);
            // Hand the allocation back: the buffer keeps its high-water
            // capacity across flushes instead of re-growing from empty.
            part.clear();
            router.pending[primary] = part;
            if let Err(message) = delivery {
                self.rejected_frames.fetch_add(1, Ordering::Relaxed);
                return Response::Error { message };
            }
        }
        Response::IngestAck {
            enqueued: keys.len() as u64,
        }
    }

    /// Deliver every key still buffered in `router` — the barrier
    /// before reads, stats, shutdown, and at connection end, so a
    /// client that stops ingesting never strands accepted keys.
    ///
    /// A failed part is *not* retried here: its keys were counted into
    /// `forwarded` at accept time, so the staleness bound carries the
    /// (bounded) loss instead of an answer quietly under-reporting.
    pub fn flush(&self, router: &mut Router) -> std::result::Result<(), String> {
        let deadline = Instant::now() + self.forward_deadline;
        let mut first_err = None;
        for primary in 0..router.pending.len() {
            if router.pending[primary].is_empty() {
                continue;
            }
            let mut part = std::mem::take(&mut router.pending[primary]);
            let delivery = self.deliver(router, primary, &part, deadline);
            // Same capacity-preserving return as `forward`.
            part.clear();
            router.pending[primary] = part;
            if let Err(message) = delivery {
                self.rejected_frames.fetch_add(1, Ordering::Relaxed);
                first_err.get_or_insert(message);
            }
        }
        match first_err {
            None => Ok(()),
            Some(e) => Err(e),
        }
    }

    /// Deliver one part to its primary or a spillover target.
    fn deliver(
        &self,
        router: &mut Router,
        primary: usize,
        keys: &[u64],
        deadline: Instant,
    ) -> std::result::Result<(), String> {
        let mut attempted = false;
        // Pass 1 honors backoff (skip members in their retry window);
        // pass 2 runs only if that skipped everyone — a batch must not
        // fail just because every member was momentarily backed off.
        for honor_backoff in [true, false] {
            for target in self.topology.route_order(primary) {
                let Some(tracker) = self.members.get(target) else {
                    continue;
                };
                if honor_backoff && !tracker.ready(Instant::now()) {
                    continue;
                }
                attempted = true;
                match self.try_send(router, target, keys, deadline) {
                    SendOutcome::Acked => {
                        tracker.record_forward(keys.len() as u64, target != primary);
                        return Ok(());
                    }
                    SendOutcome::Down => tracker.record_failure(Instant::now()),
                    SendOutcome::Saturated => {}
                    SendOutcome::Uncertain => {
                        tracker.record_failure(Instant::now());
                        return Err(format!(
                            "delivery uncertain: connection to member {target} \
                             ({}) died mid-request with {} keys in flight",
                            tracker.addr(),
                            keys.len()
                        ));
                    }
                }
            }
            if attempted {
                break;
            }
        }
        Err(format!(
            "no member reachable for {} keys routed to member {primary}",
            keys.len()
        ))
    }

    /// One attempt against one member, absorbing `OVERLOADED` with
    /// bounded retry.
    fn try_send(
        &self,
        router: &mut Router,
        target: usize,
        keys: &[u64],
        deadline: Instant,
    ) -> SendOutcome {
        let Some(slot) = router.conns.get_mut(target) else {
            return SendOutcome::Down;
        };
        // Resolve the address through the tracker, not the static
        // topology: after a promotion the slot's primary is the old
        // standby, and routers must follow the flip. An open connection
        // to a since-replaced address is dropped here even if it is
        // still healthy — a falsely-suspected primary can outlive its
        // demotion, and ingest must follow the flip, not the socket.
        let addr = self
            .members
            .get(target)
            .map(|t| t.addr())
            .unwrap_or_default();
        if slot.is_some()
            && router.conn_addrs.get(target).map(String::as_str) != Some(addr.as_str())
        {
            *slot = None;
        }
        if slot.is_none() {
            match Client::connect(&addr) {
                Ok(mut c) => {
                    let _ = c.set_timeout(Some(self.io_timeout));
                    *slot = Some(c);
                    if let Some(a) = router.conn_addrs.get_mut(target) {
                        *a = addr;
                    }
                }
                Err(_) => return SendOutcome::Down,
            }
        }
        // Encode once per member attempt — straight from the raw key
        // run when the member negotiated BIN1 — and resend the same
        // buffer across OVERLOADED retries instead of re-encoding.
        let payload = match slot.as_ref() {
            Some(client) => client.encode_ingest(keys),
            None => return SendOutcome::Down,
        };
        let mut retries = 0u64;
        loop {
            let Some(client) = slot.as_mut() else {
                return SendOutcome::Down;
            };
            match client
                .send_payload(&payload)
                .and_then(|()| client.recv())
            {
                Ok(Response::IngestAck { enqueued }) if enqueued == keys.len() as u64 => {
                    return SendOutcome::Acked;
                }
                Ok(Response::Overloaded) => {
                    if Instant::now() > deadline {
                        return SendOutcome::Saturated;
                    }
                    retries += 1;
                    std::thread::sleep(Duration::from_micros((50 * retries).min(5_000)));
                }
                Ok(_) | Err(_) => {
                    // Partial ack, protocol surprise, or a dead socket
                    // after the request went out: fate unknown.
                    *slot = None;
                    return SendOutcome::Uncertain;
                }
            }
        }
    }

    /// Answer one query from the federated snapshot.
    pub fn answer(&self, q: QueryReq) -> Response {
        self.queries.fetch_add(1, Ordering::Relaxed);
        let current = self.publisher.current();
        let stamp = self.stamp_for(current.epoch, current.captured_total);
        federate::answer(&current.snapshot, q, stamp)
    }

    /// The federated snapshot with its provenance stamp (for `SNAPSHOT`
    /// and `SNAPSHOT_PAGE` serving).
    pub fn current(&self) -> (Arc<cots::publish::StampedSnapshot<u64>>, QueryStamp) {
        let current = self.publisher.current();
        let stamp = self.stamp_for(current.epoch, current.captured_total);
        (current, stamp)
    }

    /// Stamp an answer computed from a snapshot with the given
    /// provenance: cluster staleness = acknowledged keys the snapshot
    /// does not yet account for.
    pub fn stamp_for(&self, epoch: u64, captured_total: u64) -> QueryStamp {
        QueryStamp {
            epoch,
            captured_total,
            staleness: self
                .forwarded
                .load(Ordering::Relaxed)
                .saturating_sub(captured_total),
            rotations: None,
        }
    }

    /// Service-shaped statistics, so single-node clients (and the load
    /// generator's quiescence logic) work unchanged: one synthetic
    /// "shard" per member whose `keys` is that member's merged
    /// contribution.
    pub fn stats(&self) -> ServiceReport {
        let current = self.publisher.current();
        let shards = self
            .members
            .iter()
            .map(|m| {
                let r = m.report();
                ShardReport {
                    shard: r.member,
                    batches: r.pulls,
                    keys: r.captured_total,
                    max_queue_depth: 0,
                    idle_parks: 0,
                }
            })
            .collect();
        ServiceReport {
            ingested_keys: self.forwarded.load(Ordering::Relaxed),
            ingest_frames: self.ingest_frames.load(Ordering::Relaxed),
            rejected_frames: self.rejected_frames.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            snapshot_epoch: current.epoch,
            staleness: self
                .forwarded
                .load(Ordering::Relaxed)
                .saturating_sub(current.captured_total),
            monitored: current.snapshot.len(),
            shards,
            recovery: None,
            persist: None,
            repl: None,
        }
    }

    /// The cluster-wide report for `CLUSTER_STATS`.
    pub fn cluster_report(&self) -> ClusterReport {
        let current = self.publisher.current();
        let members: Vec<_> = self.members.iter().map(|m| m.report()).collect();
        let degraded: Vec<_> = members.iter().filter(|m| !m.healthy).collect();
        ClusterReport {
            epoch: current.epoch,
            captured_total: current.captured_total,
            forwarded_keys: self.forwarded.load(Ordering::Relaxed),
            staleness: self
                .forwarded
                .load(Ordering::Relaxed)
                .saturating_sub(current.captured_total),
            degraded_members: degraded.len(),
            degraded_staleness: degraded.iter().map(|m| m.staleness).sum(),
            merges: self.merges.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            promotions: members.iter().map(|m| m.promotions).sum(),
            repl_unacked_keys: members.iter().map(|m| m.repl_unacked_keys).sum(),
            members,
        }
    }
}

/// Per-connection forwarding state: one lazily opened connection per
/// member, so concurrent client connections never serialize on shared
/// sockets, plus one coalescing buffer per member so forwarded frames
/// stay full-size no matter how many ways a client batch splits.
pub struct Router {
    conns: Vec<Option<Client>>,
    /// Address each open connection was made to; a promotion changes
    /// the tracker's address, and `try_send` drops any connection whose
    /// recorded address no longer matches (same discipline as the
    /// puller's `conn_addr`).
    conn_addrs: Vec<String>,
    pending: Vec<Vec<u64>>,
}

impl Router {
    /// Keys accepted but not yet delivered to any member.
    pub fn buffered(&self) -> usize {
        self.pending.iter().map(Vec::len).sum()
    }
}
