//! `cots-member` — a cluster member node.
//!
//! A member *is* a `cots-serve` instance (same wire protocol, same
//! engine, same durability); this binary exists so cluster tooling and
//! tests ship a member under the cluster crate's own name. It accepts
//! the core `cots-serve` flags:
//!
//! ```text
//! cots-member [--addr 127.0.0.1:4040] [--shards 4] [--capacity 1000]
//!             [--refresh-ms 20] [--queue-batches 64]
//!             [--io-model reactor|threads] [--reactor-threads R]
//!             [--data-dir DIR] [--fsync always|grouped|off]
//!             [--checkpoint-ms 5000] [--wal-segment-mb 8]
//!             [--standby] [--peer HOST:PORT]
//! ```
//!
//! With `--data-dir`, startup recovers checkpoint + WAL tail before the
//! listener opens — which is exactly what lets a crashed member rejoin
//! its coordinator with its acknowledged state intact. Prints
//! `listening on <addr>` once ready.
//!
//! Replication (both flags need `--data-dir`): `--standby` starts the
//! node refusing `INGEST` and applying `REPL_*` frames until it is
//! promoted; `--peer` starts a WAL shipper streaming this node's
//! committed log to the peer standby. A rejoining ex-primary runs with
//! *both*: it parks as a standby and its shipper stays idle unless it
//! is promoted again.

use std::time::Duration;

use cots_serve::persistence::PersistOptions;
use cots_serve::{IoConfig, Server, ServiceConfig};

fn usage() -> ! {
    eprintln!(
        "usage: cots-member [--addr HOST:PORT] [--shards N] [--capacity M] \
         [--refresh-ms MS] [--queue-batches Q] [--io-model reactor|threads] \
         [--reactor-threads R] [--data-dir DIR] [--fsync always|grouped|off] \
         [--checkpoint-ms MS] [--wal-segment-mb MB] [--standby] [--peer HOST:PORT]"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        usage();
    })
}

fn main() {
    let mut addr = "127.0.0.1:4040".to_string();
    let mut config = ServiceConfig::default();
    let mut io = IoConfig::default();
    let mut data_dir: Option<std::path::PathBuf> = None;
    let mut fsync = cots_persist::FsyncPolicy::default();
    let mut checkpoint_ms: u64 = 5_000;
    let mut wal_segment_mb: u64 = 8;
    let mut peer: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--shards" => config.shards = parse("--shards", args.next()),
            "--capacity" => config.capacity = parse("--capacity", args.next()),
            "--refresh-ms" => {
                config.refresh = Duration::from_millis(parse("--refresh-ms", args.next()))
            }
            "--queue-batches" => config.queue_batches = parse("--queue-batches", args.next()),
            "--io-model" => io.model = parse("--io-model", args.next()),
            "--reactor-threads" => io.reactor_threads = parse("--reactor-threads", args.next()),
            "--data-dir" => data_dir = Some(parse("--data-dir", args.next())),
            "--fsync" => fsync = parse("--fsync", args.next()),
            "--checkpoint-ms" => checkpoint_ms = parse("--checkpoint-ms", args.next()),
            "--wal-segment-mb" => wal_segment_mb = parse("--wal-segment-mb", args.next()),
            "--standby" => config.standby = true,
            "--peer" => peer = Some(parse("--peer", args.next())),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    if config.shards == 0 || config.capacity == 0 || config.queue_batches == 0 {
        eprintln!("--shards, --capacity and --queue-batches must be positive");
        usage();
    }
    if io.reactor_threads == 0 {
        eprintln!("--reactor-threads must be positive");
        usage();
    }
    if let Some(dir) = data_dir {
        let mut opts = PersistOptions::new(dir);
        opts.fsync = fsync;
        opts.checkpoint_every = Duration::from_millis(checkpoint_ms);
        opts.segment_bytes = wal_segment_mb.saturating_mul(1024 * 1024).max(1);
        config.persist = Some(opts);
    }
    if (config.standby || peer.is_some()) && config.persist.is_none() {
        eprintln!("--standby and --peer need --data-dir (replication ships the WAL)");
        usage();
    }
    config.repl_peer = peer.clone();
    let server = match Server::bind_with(&addr, config, io) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cots-member: cannot start on {addr}: {e}");
            std::process::exit(1);
        }
    };
    if let Some(rec) = server.service().recovery_report() {
        println!(
            "recovered {} items (checkpoint {:?}, {} wal batches over {} segments, \
             {} torn frames, {} bytes dropped) in {:.3}s",
            rec.recovered_items,
            rec.checkpoint_watermark,
            rec.replayed_batches,
            rec.segments_scanned,
            rec.torn_frames,
            rec.dropped_bytes,
            rec.elapsed_secs
        );
    }
    // The shipper parks while this node is a standby, so a rejoining
    // ex-primary can carry `--standby --peer OLD_SELF` and the pair
    // stays symmetric across promotions.
    let _shipper = peer.map(|p| {
        cots_repl::spawn(server.service().clone(), cots_repl::ShipperConfig::new(p))
            .unwrap_or_else(|e| {
                eprintln!("cots-member: cannot start WAL shipper: {e}");
                std::process::exit(1);
            })
    });
    println!("listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("cots-member: {e}");
        std::process::exit(1);
    }
}
