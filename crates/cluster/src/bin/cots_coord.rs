//! `cots-coord` — the CoTS cluster coordinator.
//!
//! ```text
//! cots-coord --members MEMBER,MEMBER[,...]
//!            [--addr 127.0.0.1:4060] [--capacity 1000]
//!            [--pull-ms 50] [--timeout-ms 2000] [--forward-deadline-ms 10000]
//!            [--coalesce-keys 0]
//! ```
//!
//! Each `MEMBER` is an address (`host:port`) or a replica pair
//! (`PRIMARY/STANDBY`, e.g. `127.0.0.1:7001/127.0.0.1:8001` — the
//! standby runs `cots-member --standby`, the primary ships its WAL to
//! it with `--peer`). The legacy colon pair spelling
//! (`127.0.0.1:7001:127.0.0.1:8001`) still parses for IPv4/hostname
//! addresses; IPv6 members (`[::1]:7001`) require the slash form for
//! pairs.
//!
//! Key-routes `INGEST` batches across the members, pulls their
//! summaries as streamed `SNAPSHOT_PAGE` deltas, merges them into one
//! federated snapshot, and answers `QUERY`/`STATS`/`CLUSTER_STATS` with
//! a cluster-wide staleness + error envelope. Members that die keep
//! contributing their last good snapshot (degraded mode, widened
//! bound); members that restart are re-pulled automatically. A dead
//! primary with a standby is failed over: the coordinator sends
//! `REPL_PROMOTE` and flips the slot's routing to the standby.
//!
//! Prints `listening on <addr>` once ready (scripts wait for this
//! line), serves until a `SHUTDOWN` request arrives, and exits 0.

use std::time::Duration;

use cots_cluster::{CoordConfig, CoordServer};

fn usage() -> ! {
    eprintln!(
        "usage: cots-coord --members MEMBER[,MEMBER...] [--addr HOST:PORT] \
         [--capacity M] [--pull-ms MS] [--timeout-ms MS] [--forward-deadline-ms MS] \
         [--coalesce-keys K]\n\
         MEMBER = HOST:PORT | PRIMARY/STANDBY (replica pair, coordinator \
         promotes the standby on primary death)"
    );
    std::process::exit(2);
}

fn parse<T: std::str::FromStr>(flag: &str, value: Option<String>) -> T {
    let Some(raw) = value else {
        eprintln!("{flag} needs a value");
        usage();
    };
    raw.parse().unwrap_or_else(|_| {
        eprintln!("{flag}: cannot parse `{raw}`");
        usage();
    })
}

fn main() {
    let mut addr = "127.0.0.1:4060".to_string();
    let mut config = CoordConfig::default();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => addr = parse("--addr", args.next()),
            "--members" => {
                let raw: String = parse("--members", args.next());
                config.members = raw
                    .split(',')
                    .map(str::trim)
                    .filter(|s| !s.is_empty())
                    .map(str::to_string)
                    .collect();
            }
            "--capacity" => config.capacity = parse("--capacity", args.next()),
            "--pull-ms" => {
                config.pull_interval = Duration::from_millis(parse("--pull-ms", args.next()))
            }
            "--timeout-ms" => {
                config.io_timeout = Duration::from_millis(parse("--timeout-ms", args.next()))
            }
            "--forward-deadline-ms" => {
                config.forward_deadline =
                    Duration::from_millis(parse("--forward-deadline-ms", args.next()))
            }
            "--coalesce-keys" => config.coalesce_keys = parse("--coalesce-keys", args.next()),
            "--help" | "-h" => usage(),
            other => {
                eprintln!("unknown flag `{other}`");
                usage();
            }
        }
    }
    if config.members.is_empty() {
        eprintln!("--members is required (comma-separated ADDR or PRIMARY/STANDBY list)");
        usage();
    }
    if config.capacity == 0 {
        eprintln!("--capacity must be positive");
        usage();
    }
    let server = match CoordServer::bind(&addr, config.clone()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("cots-coord: cannot start on {addr}: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "coordinating {} members: {}",
        config.members.len(),
        config.members.join(", ")
    );
    println!("listening on {}", server.local_addr());
    if let Err(e) = server.run() {
        eprintln!("cots-coord: {e}");
        std::process::exit(1);
    }
}
