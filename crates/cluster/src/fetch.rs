//! Streamed snapshot pulls: reassemble a member's summary from
//! `SNAPSHOT_PAGE` frames.
//!
//! A member summary can exceed the 16 MiB frame cap, so the coordinator
//! never uses the one-shot `SNAPSHOT` op. It pages instead: the member
//! pins its current published snapshot at `offset 0` and serves every
//! later page from that pin, so the reassembly here is a *consistent*
//! cut no matter how many epochs publish mid-transfer. Passing the
//! epoch of the previous pull as `since_epoch` turns an idle member's
//! answer into a tiny `unchanged` frame instead of megabytes of
//! entries.
//!
//! Everything a member sends is untrusted input to the coordinator: a
//! buggy or malicious member must produce a typed error here, never a
//! panic or an unbounded loop.
//!
//! AUDIT: total — enforced by `cargo xtask audit` (lint-totality).

use cots_core::{CotsError, CounterEntry, Result, Snapshot};
use cots_serve::{Client, QueryStamp, Request, Response, MAX_PAGE_ENTRIES};

/// One reassembled member snapshot plus its provenance.
#[derive(Debug, Clone)]
pub struct FetchedSnapshot {
    /// The member's summary, rebuilt from pages.
    pub snapshot: Snapshot<u64>,
    /// Member publisher epoch the pages were pinned to.
    pub epoch: u64,
    /// Items the member had applied when the snapshot was captured —
    /// the term this member contributes to cluster staleness math.
    pub captured_total: u64,
}

/// Outcome of one pull.
#[derive(Debug, Clone)]
pub enum Fetched {
    /// The member's epoch still equals `since_epoch`; nothing moved.
    Unchanged {
        /// The stamp of the unchanged answer (same epoch, fresh
        /// staleness reading).
        stamp: QueryStamp,
    },
    /// A full snapshot was reassembled.
    Changed(FetchedSnapshot),
}

/// Pull one consistent snapshot from `client`, paging as needed.
///
/// `since_epoch` is the epoch of the previous successful pull (0 for
/// "never pulled"): a member whose published epoch still matches
/// answers `unchanged` and the transfer is skipped.
pub fn fetch_snapshot(client: &mut Client, since_epoch: u64) -> Result<Fetched> {
    let mut entries: Vec<CounterEntry<u64>> = Vec::new();
    let mut offset = 0usize;
    // (epoch, captured_total, mass, entry count) — all four must hold
    // still across pages, or the pin was broken.
    let mut pinned: Option<(u64, u64, u64, usize)> = None;
    loop {
        let response = client.call(&Request::SnapshotPage {
            since_epoch,
            offset,
            limit: MAX_PAGE_ENTRIES,
        })?;
        let (page, at, total_entries, total, done, unchanged, stamp) = match response {
            Response::SnapshotPage {
                entries,
                offset,
                total_entries,
                total,
                done,
                unchanged,
                stamp,
            } => (entries, offset, total_entries, total, done, unchanged, stamp),
            Response::Error { message } => {
                return Err(CotsError::Protocol(format!("member refused page: {message}")))
            }
            other => {
                return Err(CotsError::Protocol(format!(
                    "unexpected page response: {other:?}"
                )))
            }
        };
        if unchanged {
            if offset == 0 {
                return Ok(Fetched::Unchanged { stamp });
            }
            return Err(CotsError::Protocol(
                "member answered `unchanged` mid-transfer".into(),
            ));
        }
        match pinned {
            None => pinned = Some((stamp.epoch, stamp.captured_total, total, total_entries)),
            Some((epoch, _, mass, count))
                if epoch != stamp.epoch || mass != total || count != total_entries =>
            {
                return Err(CotsError::Protocol(format!(
                    "pin broken mid-transfer: page at {at} reads epoch {}/total \
                     {total}/{total_entries} entries but the transfer started at \
                     epoch {epoch}/total {mass}/{count} entries (member restarted?)",
                    stamp.epoch
                )));
            }
            Some(_) => {}
        }
        if at != offset {
            return Err(CotsError::Protocol(format!(
                "page offset mismatch: asked for {offset}, got {at}"
            )));
        }
        if !done && page.is_empty() {
            return Err(CotsError::Protocol(
                "member made no progress: empty page without `done`".into(),
            ));
        }
        offset = offset.saturating_add(page.len());
        entries.extend(page);
        if entries.len() > total_entries {
            return Err(CotsError::Protocol(format!(
                "member over-delivered: {} entries for a {total_entries}-entry summary",
                entries.len()
            )));
        }
        if done {
            let (epoch, captured_total, mass, _) = match pinned {
                Some(p) => p,
                None => {
                    return Err(CotsError::Protocol(
                        "transfer finished without any page".into(),
                    ))
                }
            };
            if entries.len() != total_entries {
                return Err(CotsError::Protocol(format!(
                    "short transfer: {} of {total_entries} entries",
                    entries.len()
                )));
            }
            // `Snapshot::new` re-sorts: pages arrive in the member's
            // order already, but a hostile member could shuffle.
            return Ok(Fetched::Changed(FetchedSnapshot {
                snapshot: Snapshot::new(entries, mass),
                epoch,
                captured_total,
            }));
        }
    }
}

#[cfg(test)]
mod tests {
    // `fetch_snapshot` needs a live socket (it drives a `Client`); the
    // loopback paths are covered by `tests/cluster_e2e.rs` and the
    // serve-side paging tests. The pure reassembly guards (offset
    // mismatch, broken pin, over-delivery) are all reachable only
    // through the wire, so no in-process cases exist here.
}
