//! The federated merge and the cluster answer path — pure functions
//! over member snapshots.
//!
//! Federation is `cots_core::merge` applied across members instead of
//! across shards: for any assignment of stream keys to members (clean
//! hash routing, spillover, or anything else), the merged summary keeps
//! the Space-Saving envelope `count ≥ true ≥ count − error` over the
//! union stream, because each key's true count splits across members
//! and the merge sums per-member estimates while `absent_bound`
//! substitution over-approximates the parts a member's summary evicted.
//! `tests/federation_props.rs` property-checks exactly this against
//! exact ground truth under arbitrary partitions.
//!
//! Answers additionally carry the cluster staleness bound: `true ≤
//! count + staleness`, where staleness counts acknowledged-but-not-yet-
//! merged keys (and, degraded, keys lost inside a crashed member's
//! unflushed tail).
//!
//! AUDIT: total — enforced by `cargo xtask audit` (lint-totality).

use cots_core::merge::merge_snapshots;
use cots_core::{CotsError, Result, Snapshot, Threshold};
use cots_serve::{QueryReq, QueryStamp, Response};

/// Merge member snapshots into one federated summary of `capacity`
/// counters. An empty member list federates to an empty summary.
pub fn federate(parts: &[Snapshot<u64>], capacity: usize) -> Result<Snapshot<u64>> {
    if capacity == 0 {
        return Err(CotsError::InvalidConfig(
            "federated capacity must be positive".into(),
        ));
    }
    if parts.is_empty() {
        return Ok(Snapshot::new(Vec::new(), 0));
    }
    Ok(merge_snapshots(parts, capacity))
}

/// Answer one query from a federated snapshot, mirroring the
/// single-node `Service` answer shape so every client works unchanged
/// against a coordinator.
pub fn answer(snapshot: &Snapshot<u64>, q: QueryReq, stamp: QueryStamp) -> Response {
    let entries = match q {
        QueryReq::Point { key } => snapshot.get(&key).into_iter().copied().collect(),
        QueryReq::Frequent { phi } => {
            if !(phi > 0.0 && phi < 1.0) {
                return Response::Error {
                    message: format!("phi must be in (0, 1), got {phi}"),
                };
            }
            snapshot.frequent(Threshold::Fraction(phi))
        }
        QueryReq::TopK { k } => snapshot.top_k(k),
    };
    Response::Answer {
        entries,
        total: snapshot.total(),
        stamp,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cots_core::CounterEntry;

    fn snap(entries: &[(u64, u64, u64)], total: u64) -> Snapshot<u64> {
        Snapshot::new(
            entries
                .iter()
                .map(|&(item, count, error)| CounterEntry::new(item, count, error))
                .collect(),
            total,
        )
    }

    #[test]
    fn zero_capacity_is_rejected() {
        assert!(federate(&[snap(&[(1, 2, 0)], 2)], 0).is_err());
    }

    #[test]
    fn no_members_federate_to_empty() {
        let s = federate(&[], 8).unwrap();
        assert!(s.is_empty());
        assert_eq!(s.total(), 0);
    }

    #[test]
    fn federated_counts_sum_member_estimates() {
        let a = snap(&[(1, 5, 0), (2, 3, 0)], 8);
        let b = snap(&[(1, 4, 1), (3, 2, 0)], 6);
        let merged = federate(&[a, b], 8).unwrap();
        assert_eq!(merged.total(), 14);
        let one = merged.get(&1).unwrap();
        assert_eq!(one.count, 9);
        assert_eq!(one.error, 1);
    }

    #[test]
    fn answers_mirror_the_service_shapes() {
        let s = snap(&[(7, 90, 0), (8, 10, 0)], 100);
        let stamp = QueryStamp {
            epoch: 3,
            captured_total: 100,
            staleness: 2,
            rotations: None,
        };
        match answer(&s, QueryReq::Point { key: 7 }, stamp) {
            Response::Answer { entries, total, stamp } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].count, 90);
                assert_eq!(total, 100);
                assert_eq!(stamp.staleness, 2);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let stamp = QueryStamp {
            epoch: 3,
            captured_total: 100,
            staleness: 2,
            rotations: None,
        };
        match answer(&s, QueryReq::Frequent { phi: 0.5 }, stamp) {
            Response::Answer { entries, .. } => {
                assert_eq!(entries.len(), 1);
                assert_eq!(entries[0].item, 7);
            }
            other => panic!("unexpected: {other:?}"),
        }
        let stamp = QueryStamp {
            epoch: 3,
            captured_total: 100,
            staleness: 2,
            rotations: None,
        };
        match answer(&s, QueryReq::Frequent { phi: 1.5 }, stamp) {
            Response::Error { .. } => {}
            other => panic!("unexpected: {other:?}"),
        }
        let stamp = QueryStamp {
            epoch: 3,
            captured_total: 100,
            staleness: 2,
            rotations: None,
        };
        match answer(&s, QueryReq::TopK { k: 1 }, stamp) {
            Response::Answer { entries, .. } => assert_eq!(entries[0].item, 7),
            other => panic!("unexpected: {other:?}"),
        }
    }
}
