//! Per-member connection state: health, backoff, and the last good
//! snapshot.
//!
//! One [`MemberTracker`] exists per topology slot and is shared by the
//! puller thread (which feeds it snapshots and failures), every ingest
//! router (which consults health for spillover and records forwarded
//! keys), and the stats path. The inner mutex guards only plain data —
//! all sockets live with the threads that use them, so no I/O ever
//! happens under the lock and the critical sections are a handful of
//! field writes.
//!
//! Failure handling is the whole point: a failed pull or forward marks
//! the member unhealthy and schedules the next attempt on an
//! exponential backoff (100 ms doubling to a 5 s cap). While unhealthy,
//! the member's *last good snapshot* keeps contributing to federated
//! answers — the coordinator degrades by widening the reported
//! staleness bound, never by dropping the member's mass. A successful
//! pull (e.g. after the member restarts and recovers its WAL) clears
//! the backoff and rejoins it to the merge at full fidelity.
//!
//! AUDIT: locks — enforced by `cargo xtask audit` (lint-locks).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use cots_core::MemberReport;

use crate::fetch::FetchedSnapshot;

/// First retry delay after a failure.
const BACKOFF_BASE: Duration = Duration::from_millis(100);
/// Backoff ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Mutable member state (mutex-guarded; plain data only).
struct Inner {
    /// Last contact attempt succeeded.
    healthy: bool,
    /// Consecutive failures, for backoff sizing.
    failures: u32,
    /// Earliest next contact attempt; `None` = ready now.
    retry_at: Option<Instant>,
    /// Last successfully pulled snapshot (survives the member dying).
    last: Option<Arc<FetchedSnapshot>>,
}

/// Shared tracking for one cluster member.
pub struct MemberTracker {
    index: usize,
    addr: String,
    inner: Mutex<Inner>,
    forwarded: AtomicU64,
    spilled: AtomicU64,
    pulls: AtomicU64,
    pull_failures: AtomicU64,
}

impl MemberTracker {
    /// A fresh tracker: healthy, ready, nothing pulled yet.
    pub fn new(index: usize, addr: String) -> Self {
        Self {
            index,
            addr,
            inner: Mutex::new(Inner {
                healthy: true,
                failures: 0,
                retry_at: None,
                last: None,
            }),
            forwarded: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            pulls: AtomicU64::new(0),
            pull_failures: AtomicU64::new(0),
        }
    }

    /// The member's address.
    pub fn addr(&self) -> &str {
        &self.addr
    }

    /// Record `keys` acknowledged by this member; `spilled` marks keys
    /// absorbed on behalf of an unreachable primary.
    pub fn record_forward(&self, keys: u64, spilled: bool) {
        self.forwarded.fetch_add(keys, Ordering::Relaxed);
        if spilled {
            self.spilled.fetch_add(keys, Ordering::Relaxed);
        }
    }

    /// Keys this member has acknowledged so far.
    pub fn forwarded_keys(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// A pull succeeded with fresh data: store it, clear the backoff.
    pub fn record_pull(&self, fetched: FetchedSnapshot) {
        self.pulls.fetch_add(1, Ordering::Relaxed);
        let snapshot = Arc::new(fetched);
        let mut inner = self.inner.lock();
        inner.healthy = true;
        inner.failures = 0;
        inner.retry_at = None;
        inner.last = Some(snapshot);
    }

    /// A pull succeeded but the member was unchanged: still proof of
    /// life, so clear the backoff.
    pub fn record_unchanged(&self) {
        self.pulls.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.healthy = true;
        inner.failures = 0;
        inner.retry_at = None;
    }

    /// A pull or forward attempt failed: mark degraded and push the
    /// next attempt out exponentially.
    pub fn record_failure(&self, now: Instant) {
        self.pull_failures.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.healthy = false;
        inner.failures = inner.failures.saturating_add(1);
        let exp = inner.failures.saturating_sub(1).min(6);
        let delay = BACKOFF_BASE
            .saturating_mul(1u32 << exp)
            .min(BACKOFF_CAP);
        inner.retry_at = Some(now + delay);
    }

    /// Is a contact attempt due?
    pub fn ready(&self, now: Instant) -> bool {
        let inner = self.inner.lock();
        inner.retry_at.map_or(true, |t| now >= t)
    }

    /// Did the last contact attempt succeed?
    pub fn healthy(&self) -> bool {
        self.inner.lock().healthy
    }

    /// The last good snapshot, if any pull ever succeeded.
    pub fn last(&self) -> Option<Arc<FetchedSnapshot>> {
        self.inner.lock().last.clone()
    }

    /// Epoch of the last good snapshot (0 = never pulled), for
    /// `since_epoch` delta pulls.
    pub fn last_epoch(&self) -> u64 {
        self.inner
            .lock()
            .last
            .as_ref()
            .map_or(0, |f| f.epoch)
    }

    /// Point-in-time report for `STATS` / `CLUSTER_STATS`.
    pub fn report(&self) -> MemberReport {
        let forwarded = self.forwarded.load(Ordering::Relaxed);
        let inner = self.inner.lock();
        let (epoch, captured_total) = inner
            .last
            .as_ref()
            .map_or((0, 0), |f| (f.epoch, f.captured_total));
        MemberReport {
            member: self.index,
            addr: self.addr.clone(),
            healthy: inner.healthy,
            epoch,
            captured_total,
            forwarded_keys: forwarded,
            spilled_keys: self.spilled.load(Ordering::Relaxed),
            pulls: self.pulls.load(Ordering::Relaxed),
            pull_failures: self.pull_failures.load(Ordering::Relaxed),
            staleness: forwarded.saturating_sub(captured_total),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cots_core::Snapshot;

    fn fetched(epoch: u64, captured: u64) -> FetchedSnapshot {
        FetchedSnapshot {
            snapshot: Snapshot::new(Vec::new(), captured),
            epoch,
            captured_total: captured,
        }
    }

    #[test]
    fn failures_back_off_exponentially_and_success_clears() {
        let t = MemberTracker::new(0, "127.0.0.1:1".into());
        let now = Instant::now();
        assert!(t.ready(now) && t.healthy());

        t.record_failure(now);
        assert!(!t.healthy());
        assert!(!t.ready(now));
        assert!(t.ready(now + Duration::from_millis(150)));

        t.record_failure(now);
        assert!(!t.ready(now + Duration::from_millis(150)));
        assert!(t.ready(now + Duration::from_millis(250)));

        // Repeated failures cap at 5 s.
        for _ in 0..20 {
            t.record_failure(now);
        }
        assert!(t.ready(now + Duration::from_secs(5)));

        t.record_pull(fetched(3, 10));
        assert!(t.healthy() && t.ready(now));
        assert_eq!(t.last_epoch(), 3);
    }

    #[test]
    fn degraded_member_keeps_its_last_snapshot() {
        let t = MemberTracker::new(1, "127.0.0.1:2".into());
        t.record_forward(25, false);
        t.record_forward(5, true);
        t.record_pull(fetched(7, 20));
        t.record_failure(Instant::now());

        let r = t.report();
        assert!(!r.healthy);
        assert_eq!(r.epoch, 7);
        assert_eq!(r.captured_total, 20);
        assert_eq!(r.forwarded_keys, 30);
        assert_eq!(r.spilled_keys, 5);
        assert_eq!(r.staleness, 10);
        assert!(t.last().is_some(), "last good snapshot survives failure");
    }

    #[test]
    fn unchanged_pull_is_proof_of_life() {
        let t = MemberTracker::new(0, "m".into());
        t.record_failure(Instant::now());
        assert!(!t.healthy());
        t.record_unchanged();
        assert!(t.healthy());
        assert_eq!(t.report().pulls, 1);
    }
}
