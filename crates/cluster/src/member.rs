//! Per-member connection state: health, backoff, and the last good
//! snapshot.
//!
//! One [`MemberTracker`] exists per topology slot and is shared by the
//! puller thread (which feeds it snapshots and failures), every ingest
//! router (which consults health for spillover and records forwarded
//! keys), and the stats path. The inner mutex guards only plain data —
//! all sockets live with the threads that use them, so no I/O ever
//! happens under the lock and the critical sections are a handful of
//! field writes.
//!
//! Failure handling is the whole point: a failed pull or forward marks
//! the member unhealthy and schedules the next attempt on an
//! exponential backoff (100 ms doubling to a 5 s cap). While unhealthy,
//! the member's *last good snapshot* keeps contributing to federated
//! answers — the coordinator degrades by widening the reported
//! staleness bound, never by dropping the member's mass. A successful
//! pull (e.g. after the member restarts and recovers its WAL) clears
//! the backoff and rejoins it to the merge at full fidelity.
//!
//! AUDIT: locks — enforced by `cargo xtask audit` (lint-locks).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

use cots_core::MemberReport;

use crate::fetch::FetchedSnapshot;

/// First retry delay after a failure.
const BACKOFF_BASE: Duration = Duration::from_millis(100);
/// Backoff ceiling.
const BACKOFF_CAP: Duration = Duration::from_secs(5);

/// Mutable member state (mutex-guarded; plain data only).
struct Inner {
    /// Where this slot's *current primary* listens. Promotion swaps the
    /// standby address in here — that single write is the atomic
    /// routing flip every router and puller observes.
    addr: String,
    /// Standby address, when this slot is a replica pair. Consumed by
    /// promotion (a promoted slot has no standby until an ex-primary
    /// rejoins out of band).
    standby: Option<String>,
    /// Last contact attempt succeeded.
    healthy: bool,
    /// Consecutive failures, for backoff sizing.
    failures: u32,
    /// Earliest next contact attempt; `None` = ready now.
    retry_at: Option<Instant>,
    /// Last successfully pulled snapshot (survives the member dying).
    last: Option<Arc<FetchedSnapshot>>,
}

/// Shared tracking for one cluster member.
pub struct MemberTracker {
    index: usize,
    inner: Mutex<Inner>,
    forwarded: AtomicU64,
    spilled: AtomicU64,
    pulls: AtomicU64,
    pull_failures: AtomicU64,
    /// Times this slot's standby was promoted to primary.
    promotions: AtomicU64,
    /// Un-acked replication tail last reported by the slot's primary
    /// (`STATS` → `repl.unacked_keys`). On promotion this freezes into
    /// the loss attribution: keys the old primary acknowledged but the
    /// promoted standby never received. Informational — the keys are
    /// already inside the coordinator's forwarded-vs-captured staleness
    /// bound, never added on top of it.
    repl_unacked: AtomicU64,
    /// Frozen-at-promotion loss attribution (see `repl_unacked`).
    lost_unacked: AtomicU64,
}

impl MemberTracker {
    /// A fresh tracker: healthy, ready, nothing pulled yet.
    pub fn new(index: usize, addr: String, standby: Option<String>) -> Self {
        Self {
            index,
            inner: Mutex::new(Inner {
                addr,
                standby,
                healthy: true,
                failures: 0,
                retry_at: None,
                last: None,
            }),
            forwarded: AtomicU64::new(0),
            spilled: AtomicU64::new(0),
            pulls: AtomicU64::new(0),
            pull_failures: AtomicU64::new(0),
            promotions: AtomicU64::new(0),
            repl_unacked: AtomicU64::new(0),
            lost_unacked: AtomicU64::new(0),
        }
    }

    /// The slot's current primary address.
    pub fn addr(&self) -> String {
        self.inner.lock().addr.clone()
    }

    /// The slot's standby address, if it still has one.
    pub fn standby(&self) -> Option<String> {
        self.inner.lock().standby.clone()
    }

    /// Consecutive failed contact attempts (0 after any success).
    pub fn consecutive_failures(&self) -> u32 {
        self.inner.lock().failures
    }

    /// Times this slot's standby was promoted.
    pub fn promotions(&self) -> u64 {
        self.promotions.load(Ordering::Relaxed)
    }

    /// Record the un-acked replication tail the primary reported in its
    /// last `STATS` pull.
    pub fn record_repl_unacked(&self, keys: u64) {
        self.repl_unacked.store(keys, Ordering::Relaxed);
    }

    /// Flip routing to the standby after it acknowledged `REPL_PROMOTE`:
    /// the standby address becomes the slot's primary address, the slot
    /// loses its standby, health resets so pullers reconnect
    /// immediately, and the last reported un-acked tail freezes as this
    /// slot's loss attribution. Returns `false` (and changes nothing)
    /// when the slot has no standby — a lost promotion race.
    pub fn complete_promotion(&self) -> bool {
        let mut inner = self.inner.lock();
        let Some(standby) = inner.standby.take() else {
            return false;
        };
        inner.addr = standby;
        inner.healthy = true;
        inner.failures = 0;
        inner.retry_at = None;
        drop(inner);
        self.promotions.fetch_add(1, Ordering::Relaxed);
        let lost = self.repl_unacked.swap(0, Ordering::Relaxed);
        self.lost_unacked.fetch_add(lost, Ordering::Relaxed);
        true
    }

    /// Record `keys` acknowledged by this member; `spilled` marks keys
    /// absorbed on behalf of an unreachable primary.
    pub fn record_forward(&self, keys: u64, spilled: bool) {
        self.forwarded.fetch_add(keys, Ordering::Relaxed);
        if spilled {
            self.spilled.fetch_add(keys, Ordering::Relaxed);
        }
    }

    /// Keys this member has acknowledged so far.
    pub fn forwarded_keys(&self) -> u64 {
        self.forwarded.load(Ordering::Relaxed)
    }

    /// A pull succeeded with fresh data: store it, clear the backoff.
    pub fn record_pull(&self, fetched: FetchedSnapshot) {
        self.pulls.fetch_add(1, Ordering::Relaxed);
        let snapshot = Arc::new(fetched);
        let mut inner = self.inner.lock();
        inner.healthy = true;
        inner.failures = 0;
        inner.retry_at = None;
        inner.last = Some(snapshot);
    }

    /// A pull succeeded but the member was unchanged: still proof of
    /// life, so clear the backoff.
    pub fn record_unchanged(&self) {
        self.pulls.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.healthy = true;
        inner.failures = 0;
        inner.retry_at = None;
    }

    /// A pull or forward attempt failed: mark degraded and push the
    /// next attempt out exponentially.
    pub fn record_failure(&self, now: Instant) {
        self.pull_failures.fetch_add(1, Ordering::Relaxed);
        let mut inner = self.inner.lock();
        inner.healthy = false;
        inner.failures = inner.failures.saturating_add(1);
        let exp = inner.failures.saturating_sub(1).min(6);
        let delay = BACKOFF_BASE
            .saturating_mul(1u32 << exp)
            .min(BACKOFF_CAP);
        inner.retry_at = Some(now + delay);
    }

    /// Is a contact attempt due?
    pub fn ready(&self, now: Instant) -> bool {
        let inner = self.inner.lock();
        inner.retry_at.map_or(true, |t| now >= t)
    }

    /// Did the last contact attempt succeed?
    pub fn healthy(&self) -> bool {
        self.inner.lock().healthy
    }

    /// The last good snapshot, if any pull ever succeeded.
    pub fn last(&self) -> Option<Arc<FetchedSnapshot>> {
        self.inner.lock().last.clone()
    }

    /// Epoch of the last good snapshot (0 = never pulled), for
    /// `since_epoch` delta pulls.
    pub fn last_epoch(&self) -> u64 {
        self.inner
            .lock()
            .last
            .as_ref()
            .map_or(0, |f| f.epoch)
    }

    /// Point-in-time report for `STATS` / `CLUSTER_STATS`.
    pub fn report(&self) -> MemberReport {
        let forwarded = self.forwarded.load(Ordering::Relaxed);
        let inner = self.inner.lock();
        let (epoch, captured_total) = inner
            .last
            .as_ref()
            .map_or((0, 0), |f| (f.epoch, f.captured_total));
        MemberReport {
            member: self.index,
            addr: inner.addr.clone(),
            standby: inner.standby.clone(),
            healthy: inner.healthy,
            epoch,
            captured_total,
            forwarded_keys: forwarded,
            spilled_keys: self.spilled.load(Ordering::Relaxed),
            pulls: self.pulls.load(Ordering::Relaxed),
            pull_failures: self.pull_failures.load(Ordering::Relaxed),
            staleness: forwarded.saturating_sub(captured_total),
            promotions: self.promotions.load(Ordering::Relaxed),
            repl_unacked_keys: self
                .lost_unacked
                .load(Ordering::Relaxed)
                .saturating_add(self.repl_unacked.load(Ordering::Relaxed)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cots_core::Snapshot;

    fn fetched(epoch: u64, captured: u64) -> FetchedSnapshot {
        FetchedSnapshot {
            snapshot: Snapshot::new(Vec::new(), captured),
            epoch,
            captured_total: captured,
        }
    }

    #[test]
    fn failures_back_off_exponentially_and_success_clears() {
        let t = MemberTracker::new(0, "127.0.0.1:1".into(), None);
        let now = Instant::now();
        assert!(t.ready(now) && t.healthy());

        t.record_failure(now);
        assert!(!t.healthy());
        assert!(!t.ready(now));
        assert!(t.ready(now + Duration::from_millis(150)));

        t.record_failure(now);
        assert!(!t.ready(now + Duration::from_millis(150)));
        assert!(t.ready(now + Duration::from_millis(250)));

        // Repeated failures cap at 5 s.
        for _ in 0..20 {
            t.record_failure(now);
        }
        assert!(t.ready(now + Duration::from_secs(5)));

        t.record_pull(fetched(3, 10));
        assert!(t.healthy() && t.ready(now));
        assert_eq!(t.last_epoch(), 3);
    }

    #[test]
    fn degraded_member_keeps_its_last_snapshot() {
        let t = MemberTracker::new(1, "127.0.0.1:2".into(), None);
        t.record_forward(25, false);
        t.record_forward(5, true);
        t.record_pull(fetched(7, 20));
        t.record_failure(Instant::now());

        let r = t.report();
        assert!(!r.healthy);
        assert_eq!(r.epoch, 7);
        assert_eq!(r.captured_total, 20);
        assert_eq!(r.forwarded_keys, 30);
        assert_eq!(r.spilled_keys, 5);
        assert_eq!(r.staleness, 10);
        assert!(t.last().is_some(), "last good snapshot survives failure");
    }

    #[test]
    fn unchanged_pull_is_proof_of_life() {
        let t = MemberTracker::new(0, "m".into(), None);
        t.record_failure(Instant::now());
        assert!(!t.healthy());
        t.record_unchanged();
        assert!(t.healthy());
        assert_eq!(t.report().pulls, 1);
    }

    #[test]
    fn promotion_flips_routing_and_freezes_the_unacked_tail() {
        let t = MemberTracker::new(0, "primary:1".into(), Some("standby:2".into()));
        t.record_repl_unacked(40);
        t.record_failure(Instant::now());
        assert!(!t.healthy());

        assert!(t.complete_promotion());
        assert_eq!(t.addr(), "standby:2", "routing flipped to the standby");
        assert_eq!(t.standby(), None, "promoted slot has no standby left");
        assert!(t.healthy() && t.consecutive_failures() == 0);

        let r = t.report();
        assert_eq!(r.promotions, 1);
        assert_eq!(r.repl_unacked_keys, 40, "lost tail stays attributed");

        // Fresh repl reports from the new primary add on top of the
        // frozen loss, but a second promotion without a standby is a
        // no-op.
        t.record_repl_unacked(3);
        assert_eq!(t.report().repl_unacked_keys, 43);
        assert!(!t.complete_promotion(), "no standby left to promote");
        assert_eq!(t.report().promotions, 1);
    }
}
