//! # cots-cluster
//!
//! Multi-node federation for the CoTS service: one **coordinator**
//! (`cots-coord`) fronts N **members** (`cots-member` — a standard
//! `cots-serve` instance), scaling ingest beyond one machine while
//! keeping every answer inside an explicit error envelope.
//!
//! ```text
//! clients ──INGEST──▶ cots-coord ──MulHash(key) % N──▶ member 0..N
//!    │                    │  ▲                            │
//!    │ QUERY/STATS/       │  └── SNAPSHOT_PAGE deltas ────┘
//!    │ CLUSTER_STATS      ▼       (streamed, paged)
//!    └─────────── federated SnapshotPublisher
//!                  (cots_core::merge across members)
//! ```
//!
//! * [`topology`] — the member list and the key-routing function (the
//!   same multiplicative hash the single-node shard router uses).
//! * [`fetch`] — streamed snapshot pulls: member summaries move as
//!   `SNAPSHOT_PAGE` frames (never near the 16 MiB frame cap) pinned to
//!   one member epoch, with `unchanged` delta short-circuits.
//! * [`federate`] — the merge and answer path: `cots_core::merge`
//!   across members keeps `count ≥ true ≥ count − error` under *any*
//!   key partition, which is what makes spillover routing sound.
//! * [`member`] — per-member health, exponential backoff, and the last
//!   good snapshot (degraded members keep contributing their last pull
//!   while the widened staleness bound reports the gap).
//! * [`coord`] — the coordinator: per-connection ingest routers,
//!   per-member pullers, federated publishing, cluster staleness math.
//! * [`front`] — the coordinator's TCP front-end; same wire protocol
//!   and `HELLO` handshake as `cots-serve`, so every client works
//!   unchanged.
//!
//! Answers carry a conservative cluster envelope: for every reported
//! key, `count − error ≤ true ≤ count + staleness`, where staleness
//! counts acknowledged keys not yet pulled into the federated merge —
//! including, after a member crash, the permanently lost tail, so
//! degraded answers never silently under-report.
//!
//! Members may be **replica pairs** (`--members PRIMARY/STANDBY`): the
//! primary ships its WAL to the standby via `cots-repl`, and when the
//! coordinator's health checks see the primary dead it sends
//! `REPL_PROMOTE` to the standby and flips the slot's routing to it —
//! no restarts, answers keep flowing, and the staleness envelope
//! widens by exactly the un-acked WAL tail the standby never received
//! (counted once, through the same forwarded-vs-captured difference as
//! every other loss). See `docs/replication.md`.

#![deny(missing_docs)]

pub mod coord;
pub mod federate;
pub mod fetch;
pub mod front;
pub mod member;
pub mod topology;

pub use coord::{CoordConfig, Coordinator, Router};
pub use fetch::{fetch_snapshot, Fetched, FetchedSnapshot};
pub use front::CoordServer;
pub use member::MemberTracker;
pub use topology::{parse_member_spec, parse_members, Topology};
