//! The coordinator's TCP front-end.
//!
//! Speaks the same framed protocol (and the same mandatory `HELLO`
//! handshake) as `cots-serve`, so every existing client — `cots-load`,
//! [`cots_serve::Client`], the load generator — works against a
//! coordinator unchanged. Blocking thread-per-connection is deliberate:
//! a coordinator fronts a handful of ingest pipes and dashboards, not
//! the ten-thousand-connection fan-in the member reactor exists for.
//!
//! Differences from a member, all answered here:
//! * `INGEST` key-routes to members (with spillover) instead of
//!   enqueuing locally;
//! * `QUERY`/`SNAPSHOT`/`SNAPSHOT_PAGE` serve the *federated* snapshot
//!   with cluster-wide staleness;
//! * `CLUSTER_STATS` reports the per-member breakdown;
//! * `CHECKPOINT` is refused — durable state lives on members.

use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;

use cots::publish::StampedSnapshot;
use cots_serve::frame::{is_timeout, read_frame, write_frame, write_payload, Payload};
use cots_serve::protocol::{decode, encode, snapshot_page_response};
use cots_serve::{bin1, Request, Response, MAX_FRAME, MIN_PROTO_VERSION, PROTO_VERSION};

use crate::coord::{CoordConfig, Coordinator, Router};

/// Read-poll interval for shutdown checks.
const POLL: Duration = Duration::from_millis(25);
/// Accept-poll interval.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Feature flags the coordinator advertises in `HELLO_ACK`.
const COORD_FEATURES: &[&str] = &["cluster", "snapshot-page", "bin"];

/// A bound coordinator server.
pub struct CoordServer {
    listener: TcpListener,
    coord: Arc<Coordinator>,
    addr: SocketAddr,
}

impl CoordServer {
    /// Start the coordinator (pullers and all) and bind the listener.
    pub fn bind(addr: &str, config: CoordConfig) -> io::Result<Self> {
        let coord = Coordinator::start(config)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidInput, e.to_string()))?;
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        Ok(Self {
            listener,
            coord,
            addr,
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The coordinator, e.g. for in-process inspection in tests.
    pub fn coordinator(&self) -> &Arc<Coordinator> {
        &self.coord
    }

    /// Accept and serve until a `SHUTDOWN` request arrives, then join
    /// the pullers and return.
    pub fn run(self) -> io::Result<()> {
        self.listener.set_nonblocking(true)?;
        let mut connections = Vec::new();
        while !self.coord.shutdown_requested() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    let coord = self.coord.clone();
                    connections.push(
                        std::thread::Builder::new()
                            .name("cots-coord-conn".into())
                            .spawn(move || serve_conn(stream, &coord))?,
                    );
                }
                Err(e) if is_timeout(&e) => std::thread::sleep(ACCEPT_POLL),
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(e) => {
                    self.coord.drain();
                    return Err(e);
                }
            }
        }
        drop(self.listener);
        for c in connections {
            let _ = c.join();
        }
        self.coord.drain();
        Ok(())
    }
}

/// Per-connection protocol state.
struct Conn {
    greeted: bool,
    /// The client's `HELLO` advertised `"bin"`: BIN1 bulk frames are
    /// admitted and answered in kind.
    bin: bool,
    /// Federated snapshot pinned by an in-progress paged transfer.
    pinned: Option<Arc<StampedSnapshot<u64>>>,
}

/// Serve one client connection until EOF, violation, or shutdown,
/// then deliver whatever the router still has buffered — a client that
/// drops its socket after a final `INGEST` ack must not strand keys.
fn serve_conn(stream: TcpStream, coord: &Arc<Coordinator>) {
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(POLL));
    let mut reader = match stream.try_clone() {
        Ok(s) => io::BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = io::BufWriter::new(stream);
    let mut router = coord.router();
    conn_loop(coord, &mut reader, &mut writer, &mut router);
    let _ = coord.flush(&mut router);
}

/// The request/response loop for one connection.
fn conn_loop(
    coord: &Arc<Coordinator>,
    reader: &mut io::BufReader<TcpStream>,
    writer: &mut io::BufWriter<TcpStream>,
    router: &mut Router,
) {
    let mut conn = Conn {
        greeted: false,
        bin: false,
        pinned: None,
    };
    loop {
        let payload = match read_frame(reader) {
            Ok(Some(p)) => p,
            Ok(None) => return,
            Err(e) if is_timeout(&e) => {
                if coord.shutdown_requested() {
                    return;
                }
                continue;
            }
            Err(_) => {
                let resp = Response::Error {
                    message: "malformed frame".into(),
                };
                let _ = write_frame(writer, &encode(&resp));
                return;
            }
        };
        // Same admission rule as a member: BIN1 frames are only decoded
        // on connections whose `HELLO` negotiated the `bin` feature, and
        // the response mirrors the request's encoding (errors stay JSON —
        // clients of either mode decode both).
        let ((response, close), bin) = match &payload {
            Payload::Json(text) => (
                match decode::<Request>(text) {
                    Ok(request) => handle(coord, router, &mut conn, request),
                    Err(e) => (
                        Response::Error {
                            message: e.to_string(),
                        },
                        false,
                    ),
                },
                false,
            ),
            Payload::Bin(bytes) => {
                if !conn.bin {
                    (
                        (
                            Response::Error {
                                message: "BIN1 frame on a connection that did not \
                                          negotiate the `bin` feature in HELLO"
                                    .into(),
                            },
                            true,
                        ),
                        false,
                    )
                } else {
                    match bin1::decode_request(bytes) {
                        Ok(request) => (handle(coord, router, &mut conn, request), true),
                        Err(e) => (
                            (
                                Response::Error {
                                    message: e.to_string(),
                                },
                                false,
                            ),
                            false,
                        ),
                    }
                }
            }
        };
        let encoded = if bin {
            match bin1::encode_response(&response) {
                Some(bytes) => Payload::Bin(bytes),
                None => Payload::Json(encode(&response)),
            }
        } else {
            Payload::Json(encode(&response))
        };
        if encoded.len() > MAX_FRAME {
            // Only the one-shot federated snapshot can get here.
            let fallback = Response::Error {
                message: format!(
                    "response would be {} bytes, over the {MAX_FRAME}-byte frame \
                     cap; page it with SNAPSHOT_PAGE",
                    encoded.len()
                ),
            };
            if write_frame(writer, &encode(&fallback)).is_err() {
                return;
            }
            continue;
        }
        if write_payload(writer, &encoded).is_err() {
            return;
        }
        if close {
            return;
        }
    }
}

/// Dispatch one request; returns the response and whether to close.
fn handle(
    coord: &Arc<Coordinator>,
    router: &mut Router,
    conn: &mut Conn,
    request: Request,
) -> (Response, bool) {
    if conn.greeted && !matches!(request, Request::Ingest { .. }) {
        // Read barrier: anything that is not an INGEST observes (or
        // ends) the stream, so deliver this connection's buffered keys
        // first. A failure is absorbed — those keys stay inside the
        // staleness bound the answer is stamped with.
        let _ = coord.flush(router);
    }
    match request {
        Request::Hello {
            proto_version,
            ref features,
        } => {
            if (MIN_PROTO_VERSION..=PROTO_VERSION).contains(&proto_version) {
                conn.greeted = true;
                conn.bin = features.iter().any(|f| f == "bin");
                (
                    Response::HelloAck {
                        proto_version: PROTO_VERSION,
                        features: COORD_FEATURES.iter().map(|f| f.to_string()).collect(),
                    },
                    false,
                )
            } else {
                (
                    Response::UnsupportedVersion {
                        supported: PROTO_VERSION,
                        requested: proto_version,
                    },
                    true,
                )
            }
        }
        _ if !conn.greeted => (
            Response::UnsupportedVersion {
                supported: PROTO_VERSION,
                requested: 0,
            },
            true,
        ),
        Request::Ingest { keys } => (coord.forward(router, &keys), false),
        Request::Query(q) => (coord.answer(q), false),
        Request::Stats => (Response::Stats(coord.stats()), false),
        Request::ClusterStats => (Response::ClusterStats(coord.cluster_report()), false),
        Request::Snapshot => {
            let (current, stamp) = coord.current();
            (
                Response::Snapshot {
                    snapshot: current.snapshot.clone(),
                    stamp,
                },
                false,
            )
        }
        Request::SnapshotPage {
            since_epoch,
            offset,
            limit,
        } => {
            if offset == 0 || conn.pinned.is_none() {
                let (current, _) = coord.current();
                conn.pinned = Some(current);
            }
            match &conn.pinned {
                Some(pinned) => {
                    let stamp = coord.stamp_for(pinned.epoch, pinned.captured_total);
                    (
                        snapshot_page_response(&pinned.snapshot, stamp, since_epoch, offset, limit),
                        false,
                    )
                }
                None => (
                    Response::Error {
                        message: "no federated snapshot yet".into(),
                    },
                    false,
                ),
            }
        }
        Request::Checkpoint => (
            Response::Error {
                message: "coordinator holds no durable state; checkpoint members directly".into(),
            },
            false,
        ),
        Request::ReplSubscribe { .. }
        | Request::ReplBatch { .. }
        | Request::ReplSnapshot { .. }
        | Request::ReplPromote => (
            Response::Error {
                message: "coordinator is not a replica; REPL ops go to members \
                          (the coordinator promotes standbys itself)"
                    .into(),
            },
            false,
        ),
        Request::Shutdown => {
            coord.begin_shutdown();
            (Response::ShuttingDown, true)
        }
    }
}
