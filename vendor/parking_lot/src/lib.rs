//! Offline stand-in for the `parking_lot` crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! real `parking_lot` cannot be fetched. This crate provides the *subset* of
//! its API that the workspace actually uses — [`Mutex`], [`MutexGuard`],
//! [`RwLock`], and [`Condvar`] — implemented as thin wrappers over
//! `std::sync`. Semantics match parking_lot where the workspace depends on
//! them:
//!
//! * no poisoning — a panic while holding a lock does not poison it (the
//!   poison flag of the underlying std lock is swallowed);
//! * guards release on drop;
//! * `Condvar::wait` takes `&mut MutexGuard` and re-acquires before
//!   returning.
//!
//! The real crate's timed waits, fairness controls, and `const fn`
//! constructors are intentionally absent. To switch back to upstream
//! parking_lot, point the `parking_lot` entry of `[workspace.dependencies]`
//! at the registry version; no workspace code needs to change.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, PoisonError};

/// A mutual-exclusion primitive, API-compatible with
/// `parking_lot::Mutex` for the operations used in this workspace.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Create a new unlocked mutex.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the mutex, blocking until it is available.
    ///
    /// Unlike `std`, a poisoned lock (a panic in a previous holder) is not
    /// an error: the guard is returned regardless, matching parking_lot.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let g = self
            .inner
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        MutexGuard { inner: Some(g) }
    }

    /// Attempt to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(g) => Some(MutexGuard { inner: Some(g) }),
            Err(sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(g) => f.debug_struct("Mutex").field("data", &&*g).finish(),
            None => f.write_str("Mutex { <locked> }"),
        }
    }
}

/// RAII guard for [`Mutex`]; the lock is released on drop.
///
/// The inner `Option` exists so [`Condvar::wait`] can temporarily move the
/// underlying std guard out while the thread sleeps; it is `Some` at every
/// point user code can observe.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A condition variable paired with [`Mutex`], mirroring
/// `parking_lot::Condvar::wait`'s `&mut MutexGuard` signature.
#[derive(Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Create a new condition variable.
    pub fn new() -> Self {
        Self::default()
    }

    /// Block until notified, releasing the guard's mutex while asleep and
    /// re-acquiring it before returning. Spurious wakeups are possible,
    /// exactly as with the real crate.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Wake one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wake all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

/// A reader-writer lock, API-compatible with `parking_lot::RwLock` for the
/// operations used in this workspace.
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Create a new unlocked lock.
    pub fn new(value: T) -> Self {
        Self {
            inner: sync::RwLock::new(value),
        }
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquire shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        RwLockReadGuard {
            inner: self
                .inner
                .read()
                .unwrap_or_else(PoisonError::into_inner),
        }
    }

    /// Acquire exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        RwLockWriteGuard {
            inner: self
                .inner
                .write()
                .unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("RwLock { .. }")
    }
}

/// RAII shared-read guard for [`RwLock`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

/// RAII exclusive-write guard for [`RwLock`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_excludes() {
        let m = Arc::new(Mutex::new(0u64));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for _ in 0..10_000 {
                        *m.lock() += 1;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(*m.lock(), 40_000);
    }

    #[test]
    fn try_lock_contends() {
        let m = Mutex::new(1);
        let g = m.lock();
        assert!(m.try_lock().is_none());
        drop(g);
        assert!(m.try_lock().is_some());
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let p2 = pair.clone();
        let h = std::thread::spawn(move || {
            let (lock, cv) = &*p2;
            let mut started = lock.lock();
            while !*started {
                cv.wait(&mut started);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        h.join().unwrap();
    }

    #[test]
    fn rwlock_read_write() {
        let l = RwLock::new(vec![1]);
        {
            let r1 = l.read();
            let r2 = l.read();
            assert_eq!(*r1, *r2);
        }
        l.write().push(2);
        assert_eq!(*l.read(), vec![1, 2]);
    }

    #[test]
    fn no_poisoning_on_panic() {
        let m = Arc::new(Mutex::new(5));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison attempt");
        })
        .join();
        assert_eq!(*m.lock(), 5);
    }
}
