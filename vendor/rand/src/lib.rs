//! Offline stand-in for the `rand` crate.
//!
//! Provides the subset of the rand 0.8 API this workspace uses:
//! [`Rng::gen`], [`Rng::gen_range`], [`rngs::StdRng`], and
//! [`SeedableRng::seed_from_u64`]. The generator behind [`rngs::StdRng`] is
//! xoshiro256++ seeded through SplitMix64 — not ChaCha12 like upstream, so
//! streams are *reproducible under this crate* but not bit-identical to
//! upstream `StdRng`. All workspace uses treat the RNG as an opaque seeded
//! source, so only within-crate determinism matters.
//!
//! `gen_range` maps a 64-bit draw onto the span by widening multiply
//! (Lemire reduction without the rejection step); the bias is < span/2⁶⁴,
//! far below anything the statistical tests in this workspace can resolve.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Low-level uniform 64-bit source.
pub trait RngCore {
    /// Next uniformly distributed 64-bit value.
    fn next_u64(&mut self) -> u64;
}

/// A type that can be sampled uniformly from an [`RngCore`].
pub trait UniformSample: Sized {
    /// Draw one value over the type's canonical range (`[0,1)` for floats,
    /// the full domain for integers).
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl UniformSample for u64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl UniformSample for u32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl UniformSample for bool {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl UniformSample for f64 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits over [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl UniformSample for f32 {
    fn sample_from<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// A half-open or inclusive range that `gen_range` can sample from.
pub trait SampleRange {
    /// The element type produced.
    type Output;
    /// Draw a uniform value from the range.
    ///
    /// # Panics
    /// If the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Widening-multiply reduction of a uniform `u64` onto `[0, span)`.
#[inline]
fn reduce(x: u64, span: u64) -> u64 {
    ((x as u128 * span as u128) >> 64) as u64
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + reduce(rng.next_u64(), span) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + reduce(rng.next_u64(), span + 1) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample_from(rng) * (self.end - self.start)
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] exactly as in rand 0.8.
pub trait Rng: RngCore {
    /// Sample a value over the type's canonical range.
    fn gen<T: UniformSample>(&mut self) -> T {
        T::sample_from(self)
    }

    /// Sample uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Bernoulli trial with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample_from(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Construction of an RNG from seed material.
pub trait SeedableRng: Sized {
    /// Build a generator deterministically from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++.
    ///
    /// Statistically strong for every test in this repository (the zipf
    /// law-matching tests demand ~5% relative accuracy over 2·10⁵ draws);
    /// **not** cryptographic and not bit-compatible with upstream
    /// `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    #[inline]
    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // Expand the seed with SplitMix64, the xoshiro authors'
            // recommended seeding procedure.
            let mut state = seed;
            let s = [
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
                splitmix64(&mut state),
            ];
            Self { s }
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ (Blackman & Vigna, 2018).
            let s = &mut self.s;
            let result = s[0]
                .wrapping_add(s[3])
                .rotate_left(23)
                .wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xs: Vec<u64> = (0..16).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..16).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..16).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let f: f64 = r.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..5_000 {
            let v = r.gen_range(0usize..10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s));
        for _ in 0..5_000 {
            let v = r.gen_range(3u64..=5);
            assert!((3..=5).contains(&v));
        }
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(1);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
