//! Offline stand-in for the `crossbeam` facade crate.
//!
//! This workspace builds in environments without a crates.io mirror, so the
//! real crossbeam cannot be fetched. This crate re-implements the two
//! submodules the workspace uses:
//!
//! * [`epoch`] — epoch-based memory reclamation with the `crossbeam-epoch`
//!   API (`Atomic`, `Owned`, `Shared`, `Guard`, `pin`, `unprotected`). This
//!   is a *real* (if simple) three-epoch EBR implementation, not a no-op:
//!   deferred destructions are only executed once every thread pinned at
//!   the deferring epoch has unpinned.
//! * [`queue`] — [`queue::SegQueue`] with the upstream API. Internally a
//!   mutexed `VecDeque` rather than a lock-free segment list; linearizable
//!   and `Sync`, but without upstream's lock-freedom. The ablation
//!   benchmark that compares `SegQueue` against a mutexed `VecDeque` will
//!   therefore show no separation under this stand-in.
//!
//! To switch back to upstream, point the `crossbeam` entry of
//! `[workspace.dependencies]` at the registry version; no workspace code
//! needs to change.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod epoch;
pub mod queue;
