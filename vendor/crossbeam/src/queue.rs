//! Concurrent queues with the `crossbeam::queue` API surface.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// An unbounded MPMC FIFO queue with the `crossbeam::queue::SegQueue` API.
///
/// Internally a mutexed `VecDeque` — linearizable and `Sync`, but **not**
/// lock-free like upstream. Every workspace use treats the queue as an
/// opaque MPMC channel, so only the API and linearizability matter for
/// correctness; see the crate docs for the benchmarking caveat.
pub struct SegQueue<T> {
    inner: Mutex<VecDeque<T>>,
}

impl<T> SegQueue<T> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self {
            inner: Mutex::new(VecDeque::new()),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, VecDeque<T>> {
        self.inner.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Push onto the back of the queue.
    pub fn push(&self, value: T) {
        self.lock().push_back(value);
    }

    /// Pop from the front of the queue.
    pub fn pop(&self) -> Option<T> {
        self.lock().pop_front()
    }

    /// Number of elements currently queued (racy by nature, like upstream).
    pub fn len(&self) -> usize {
        self.lock().len()
    }

    /// Whether the queue is empty (racy by nature, like upstream).
    pub fn is_empty(&self) -> bool {
        self.lock().is_empty()
    }
}

impl<T> Default for SegQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> std::fmt::Debug for SegQueue<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SegQueue {{ len: {} }}", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn fifo_order_single_thread() {
        let q = SegQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        assert_eq!(q.len(), 100);
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert!(q.is_empty());
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn mpmc_conserves_mass() {
        let q = Arc::new(SegQueue::new());
        let popped = Arc::new(AtomicU64::new(0));
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let q = q.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..10_000u64 {
                    q.push(t * 10_000 + i);
                }
            }));
        }
        for _ in 0..4 {
            let q = q.clone();
            let popped = popped.clone();
            handles.push(std::thread::spawn(move || {
                let mut local = 0u64;
                let mut misses = 0;
                while misses < 1_000 {
                    match q.pop() {
                        Some(_) => {
                            local += 1;
                            misses = 0;
                        }
                        None => {
                            misses += 1;
                            std::thread::yield_now();
                        }
                    }
                }
                popped.fetch_add(local, Ordering::SeqCst);
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        while q.pop().is_some() {
            popped.fetch_add(1, Ordering::SeqCst);
        }
        assert_eq!(popped.load(Ordering::SeqCst), 40_000);
    }
}
