//! Epoch-based memory reclamation with the `crossbeam-epoch` API surface.
//!
//! # Scheme
//!
//! A global epoch counter advances through `0, 1, 2, …`. Every thread that
//! enters a critical section ([`pin`]) announces the epoch it observed;
//! threads announce "not pinned" when their last guard drops. An object
//! retired at epoch `e` ([`Guard::defer_destroy`]) may be freed once the
//! global epoch reaches `e + 2`: advancing from `e` to `e + 1` requires
//! every pinned thread to have announced `e`, so by `e + 2` every thread
//! that could have observed the object inside a critical section has
//! unpinned at least once since it was unlinked.
//!
//! All synchronization here uses `SeqCst`; this stand-in favours being
//! obviously correct over shaving fences (upstream crossbeam-epoch is the
//! optimized implementation).
//!
//! # Differences from upstream
//!
//! * Participant registration and the garbage list use mutexes, so `pin`
//!   is lock-free only on its fast path (re-entrant pin). Throughput is
//!   adequate for the test/bench workloads in this workspace.
//! * Pointer tag bits are not supported (the workspace does not use them).
//! * Collection runs inside [`Guard::flush`] and periodically on unpin,
//!   never on a background thread.

use std::cell::Cell;
use std::marker::PhantomData;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

// ---------------------------------------------------------------------------
// Global state
// ---------------------------------------------------------------------------

/// One retired object: the erased pointer and its monomorphized destructor.
struct Deferred {
    ptr: *mut (),
    destroy: unsafe fn(*mut ()),
}

// SAFETY: a `Deferred` is only created from a pointer whose ownership has
// been transferred to the collector (the `defer_destroy` contract), so the
// collector may run the destructor from any thread.
unsafe impl Send for Deferred {}

struct Global {
    /// The global epoch. Monotonically increasing.
    epoch: AtomicUsize,
    /// Per-thread announcement slots of every live participant.
    participants: Mutex<Vec<Arc<Participant>>>,
    /// Retired objects tagged with the epoch at which they were retired.
    garbage: Mutex<Vec<(usize, Deferred)>>,
}

struct Participant {
    /// `0` when not pinned, otherwise `(epoch << 1) | 1`.
    announced: AtomicUsize,
}

fn global() -> &'static Global {
    static GLOBAL: std::sync::OnceLock<Global> = std::sync::OnceLock::new();
    GLOBAL.get_or_init(|| Global {
        epoch: AtomicUsize::new(0),
        participants: Mutex::new(Vec::new()),
        garbage: Mutex::new(Vec::new()),
    })
}

impl Global {
    /// Try to advance the global epoch, then free sufficiently old garbage.
    fn collect(&self) {
        // Advance: only possible if every pinned participant has announced
        // the current epoch. Skip (rather than block) under contention —
        // a later flush will retry.
        if let Ok(participants) = self.participants.try_lock() {
            let current = self.epoch.load(Ordering::SeqCst);
            let all_caught_up = participants.iter().all(|p| {
                let a = p.announced.load(Ordering::SeqCst);
                a & 1 == 0 || a >> 1 == current
            });
            if all_caught_up {
                // A stale-epoch store racing with this is benign: `collect`
                // runs under the participants lock, and a pin that raced
                // past us keeps the *next* advance from freeing anything it
                // could still observe.
                let _ = self.epoch.compare_exchange(
                    current,
                    current + 1,
                    Ordering::SeqCst,
                    Ordering::SeqCst,
                );
            }
        }
        // Free garbage retired at least two epochs ago.
        let ready: Vec<Deferred> = {
            let mut garbage = match self.garbage.try_lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            let current = self.epoch.load(Ordering::SeqCst);
            let mut ready = Vec::new();
            garbage.retain_mut(|(e, d)| {
                if *e + 2 <= current {
                    ready.push(Deferred {
                        ptr: d.ptr,
                        destroy: d.destroy,
                    });
                    false
                } else {
                    true
                }
            });
            ready
        };
        for d in ready {
            // SAFETY: the object was retired at least two epoch advances
            // ago, so no thread can still hold a guard-protected reference
            // to it (see the module-level scheme description). Ownership
            // was transferred to the collector at `defer_destroy` time and
            // each entry is freed exactly once (it was removed from the
            // garbage list above).
            unsafe { (d.destroy)(d.ptr) };
        }
    }
}

// ---------------------------------------------------------------------------
// Per-thread handle
// ---------------------------------------------------------------------------

struct Handle {
    participant: Arc<Participant>,
    pin_count: Cell<usize>,
    /// Unpins since the last periodic collection.
    unpins: Cell<usize>,
}

impl Handle {
    fn new() -> Self {
        let participant = Arc::new(Participant {
            announced: AtomicUsize::new(0),
        });
        global()
            .participants
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push(participant.clone());
        Self {
            participant,
            pin_count: Cell::new(0),
            unpins: Cell::new(0),
        }
    }
}

impl Drop for Handle {
    fn drop(&mut self) {
        // Deregister this thread so a dead thread can never block epoch
        // advancement.
        let mut participants = global()
            .participants
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        participants.retain(|p| !Arc::ptr_eq(p, &self.participant));
    }
}

thread_local! {
    static HANDLE: Handle = Handle::new();
}

// ---------------------------------------------------------------------------
// Guard
// ---------------------------------------------------------------------------

/// A pinned critical section. While any guard exists on a thread, no object
/// retired during the guard's lifetime will be freed.
pub struct Guard {
    unprotected: bool,
    /// Guards are tied to the thread that created them (the thread-local
    /// pin count); keep them `!Send`.
    _not_send: PhantomData<*const ()>,
}

// SAFETY: every method on `&Guard` either touches only global state
// (`defer_destroy`, `flush`) or reads the immutable `unprotected` flag, so
// sharing references across threads is sound; only moving a guard (and
// dropping it on the wrong thread) is ruled out, via `!Send` above. A
// shared reference is exactly what `unprotected()` hands out.
unsafe impl Sync for Guard {}

impl Guard {
    /// Schedule `ptr` for destruction once no pinned thread can reach it.
    ///
    /// # Safety
    ///
    /// The caller must own `ptr` (it must have been unlinked from every
    /// shared structure so that no *new* reference can be created), it must
    /// not be null, and it must not be passed to `defer_destroy` again.
    pub unsafe fn defer_destroy<T>(&self, ptr: Shared<'_, T>) {
        let raw = ptr.as_raw() as *mut T;
        debug_assert!(!raw.is_null(), "defer_destroy(null)");
        // SAFETY: callers must pass a `Box::into_raw`-produced pointer whose
        // ownership was transferred to the collector (inherited from the
        // `defer_destroy` contract above).
        unsafe fn destroy<T>(p: *mut ()) {
            // SAFETY: `p` was produced by `Box::into_raw` (see `Owned`) and
            // the `defer_destroy` contract passed ownership to us.
            drop(unsafe { Box::from_raw(p as *mut T) });
        }
        if self.unprotected {
            // No other thread can observe the object (the `unprotected`
            // contract): free immediately.
            // SAFETY: as above, plus the caller's `unprotected` guarantee.
            unsafe { destroy::<T>(raw as *mut ()) };
            return;
        }
        let epoch = global().epoch.load(Ordering::SeqCst);
        global()
            .garbage
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .push((
                epoch,
                Deferred {
                    ptr: raw as *mut (),
                    destroy: destroy::<T>,
                },
            ));
    }

    /// Attempt to advance the epoch and run ready destructions now.
    pub fn flush(&self) {
        global().collect();
    }
}

impl Drop for Guard {
    fn drop(&mut self) {
        if self.unprotected {
            return;
        }
        HANDLE.with(|h| {
            let n = h.pin_count.get();
            debug_assert!(n > 0, "guard dropped while not pinned");
            h.pin_count.set(n.saturating_sub(1));
            if n <= 1 {
                h.participant.announced.store(0, Ordering::SeqCst);
                // Periodic collection so quiescent workloads still reclaim.
                let u = h.unpins.get().wrapping_add(1);
                h.unpins.set(u);
                if u % 64 == 0 {
                    global().collect();
                }
            }
        });
    }
}

/// Pin the current thread, entering a critical section.
pub fn pin() -> Guard {
    HANDLE.with(|h| {
        let n = h.pin_count.get();
        if n == 0 {
            let e = global().epoch.load(Ordering::SeqCst);
            h.participant.announced.store(e << 1 | 1, Ordering::SeqCst);
            std::sync::atomic::fence(Ordering::SeqCst);
        }
        h.pin_count.set(n + 1);
    });
    Guard {
        unprotected: false,
        _not_send: PhantomData,
    }
}

/// A guard that performs no pinning and frees deferred objects immediately.
///
/// # Safety
///
/// The caller must guarantee that no other thread is concurrently accessing
/// any data structure touched through this guard (typically: inside `Drop`
/// of the owning structure, or single-threaded setup/teardown).
pub unsafe fn unprotected() -> &'static Guard {
    static UNPROTECTED: Guard = Guard {
        unprotected: true,
        _not_send: PhantomData,
    };
    &UNPROTECTED
}

// ---------------------------------------------------------------------------
// Pointer types
// ---------------------------------------------------------------------------

/// An owned, heap-allocated value, like `Box<T>`, convertible into a
/// [`Shared`] for publication.
pub struct Owned<T> {
    raw: *mut T,
    _marker: PhantomData<T>,
}

// SAFETY: `Owned` is a uniquely-owning pointer exactly like `Box<T>`;
// transferring it between threads transfers the `T`.
unsafe impl<T: Send> Send for Owned<T> {}

impl<T> Owned<T> {
    /// Allocate `value` on the heap.
    pub fn new(value: T) -> Self {
        Self {
            raw: Box::into_raw(Box::new(value)),
            _marker: PhantomData,
        }
    }

    /// Convert into a [`Shared`] bound to `guard`'s critical section,
    /// relinquishing ownership.
    #[allow(clippy::wrong_self_convention)] // upstream crossbeam-epoch name
    pub fn into_shared<'g>(self, _guard: &'g Guard) -> Shared<'g, T> {
        let raw = self.raw;
        std::mem::forget(self);
        Shared {
            raw,
            _marker: PhantomData,
        }
    }

    /// Consume and return the boxed value.
    pub fn into_box(self) -> Box<T> {
        let raw = self.raw;
        std::mem::forget(self);
        // SAFETY: `raw` came from `Box::into_raw` in `Owned::new` and
        // ownership is surrendered above.
        unsafe { Box::from_raw(raw) }
    }
}

impl<T> Drop for Owned<T> {
    fn drop(&mut self) {
        // SAFETY: an `Owned` that was never converted still uniquely owns
        // its allocation.
        drop(unsafe { Box::from_raw(self.raw) });
    }
}

impl<T> Deref for Owned<T> {
    type Target = T;
    fn deref(&self) -> &T {
        // SAFETY: `Owned` uniquely owns a valid allocation.
        unsafe { &*self.raw }
    }
}

impl<T> DerefMut for Owned<T> {
    fn deref_mut(&mut self) -> &mut T {
        // SAFETY: `Owned` uniquely owns a valid allocation.
        unsafe { &mut *self.raw }
    }
}

/// A pointer valid for the lifetime `'g` of the guard it was loaded under.
pub struct Shared<'g, T> {
    raw: *const T,
    _marker: PhantomData<&'g T>,
}

impl<T> Clone for Shared<'_, T> {
    fn clone(&self) -> Self {
        *self
    }
}
impl<T> Copy for Shared<'_, T> {}

impl<T> PartialEq for Shared<'_, T> {
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.raw, other.raw)
    }
}
impl<T> Eq for Shared<'_, T> {}

impl<'g, T> From<*const T> for Shared<'g, T> {
    fn from(raw: *const T) -> Self {
        Self {
            raw,
            _marker: PhantomData,
        }
    }
}

impl<'g, T> Shared<'g, T> {
    /// The null pointer.
    pub fn null() -> Self {
        Self {
            raw: std::ptr::null(),
            _marker: PhantomData,
        }
    }

    /// Whether this is null.
    pub fn is_null(&self) -> bool {
        self.raw.is_null()
    }

    /// The raw pointer.
    pub fn as_raw(&self) -> *const T {
        self.raw
    }

    /// Dereference.
    ///
    /// # Safety
    ///
    /// The pointer must be non-null, and the pointee must not have been
    /// destroyed (it is protected for `'g` only if it was reachable when
    /// loaded under the guard).
    pub unsafe fn deref(&self) -> &'g T {
        debug_assert!(!self.raw.is_null(), "deref of null Shared");
        // SAFETY: forwarded to the caller (see above).
        unsafe { &*self.raw }
    }

    /// Dereference, mapping null to `None`.
    ///
    /// # Safety
    ///
    /// Same as [`Shared::deref`], minus the non-null requirement.
    pub unsafe fn as_ref(&self) -> Option<&'g T> {
        if self.raw.is_null() {
            None
        } else {
            // SAFETY: forwarded to the caller; non-null was just checked.
            Some(unsafe { &*self.raw })
        }
    }

    /// Reclaim exclusive ownership of the pointee.
    ///
    /// # Safety
    ///
    /// The caller must guarantee no other thread holds or can obtain a
    /// reference to the pointee (typically inside `Drop` of the owning
    /// structure, under [`unprotected`]).
    pub unsafe fn into_owned(self) -> Owned<T> {
        debug_assert!(!self.raw.is_null(), "into_owned of null Shared");
        Owned {
            raw: self.raw as *mut T,
            _marker: PhantomData,
        }
    }
}

impl<T> std::fmt::Debug for Shared<'_, T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Shared({:p})", self.raw)
    }
}

/// Types that can be stored into an [`Atomic`]: [`Owned`] and [`Shared`].
pub trait Pointer<T> {
    /// Surrender the pointer value.
    fn into_ptr(self) -> *mut T;
}

impl<T> Pointer<T> for Owned<T> {
    fn into_ptr(self) -> *mut T {
        let raw = self.raw;
        std::mem::forget(self);
        raw
    }
}

impl<T> Pointer<T> for Shared<'_, T> {
    fn into_ptr(self) -> *mut T {
        self.raw as *mut T
    }
}

/// An atomic pointer to a heap object, managed under epoch reclamation.
///
/// Dropping an `Atomic` does **not** drop the pointee (matching upstream):
/// the owner is responsible for reclaiming via [`Shared::into_owned`] or
/// [`Guard::defer_destroy`].
pub struct Atomic<T> {
    ptr: AtomicPtr<T>,
}

// SAFETY: `Atomic<T>` hands out `&T` across threads (via `Shared::deref`)
// and moves `T` between threads when ownership is reclaimed, so it is
// `Send`/`Sync` exactly when `T` is both — the same bounds as upstream.
unsafe impl<T: Send + Sync> Send for Atomic<T> {}
// SAFETY: as above.
unsafe impl<T: Send + Sync> Sync for Atomic<T> {}

impl<T> Atomic<T> {
    /// A null pointer.
    pub fn null() -> Self {
        Self {
            ptr: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Allocate `value` and point at it.
    pub fn new(value: T) -> Self {
        Self {
            ptr: AtomicPtr::new(Box::into_raw(Box::new(value))),
        }
    }

    /// Load the current pointer under `guard`.
    pub fn load<'g>(&self, ord: Ordering, _guard: &'g Guard) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.load(ord),
            _marker: PhantomData,
        }
    }

    /// Store a new pointer. The previous pointee is *not* reclaimed.
    pub fn store<P: Pointer<T>>(&self, new: P, ord: Ordering) {
        self.ptr.store(new.into_ptr(), ord);
    }

    /// Atomically swap, returning the previous pointer.
    pub fn swap<'g, P: Pointer<T>>(
        &self,
        new: P,
        ord: Ordering,
        _guard: &'g Guard,
    ) -> Shared<'g, T> {
        Shared {
            raw: self.ptr.swap(new.into_ptr(), ord),
            _marker: PhantomData,
        }
    }
}

impl<T> Default for Atomic<T> {
    fn default() -> Self {
        Self::null()
    }
}

impl<T> From<Owned<T>> for Atomic<T> {
    fn from(owned: Owned<T>) -> Self {
        Self {
            ptr: AtomicPtr::new(owned.into_ptr()),
        }
    }
}

impl<T> std::fmt::Debug for Atomic<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Atomic({:p})", self.ptr.load(Ordering::Relaxed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    struct DropCounter(Arc<AtomicUsize>);
    impl Drop for DropCounter {
        fn drop(&mut self) {
            self.0.fetch_add(1, Ordering::SeqCst);
        }
    }

    #[test]
    fn deferred_destruction_runs_exactly_once() {
        let drops = Arc::new(AtomicUsize::new(0));
        let a: Atomic<DropCounter> = Atomic::new(DropCounter(drops.clone()));
        {
            let guard = pin();
            let s = a.load(Ordering::SeqCst, &guard);
            a.store(Shared::null(), Ordering::SeqCst);
            // SAFETY: unlinked above; sole owner.
            unsafe { guard.defer_destroy(s) };
        }
        // Drive the epoch forward until collection happens.
        for _ in 0..16 {
            pin().flush();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn pinned_readers_block_reclamation() {
        let drops = Arc::new(AtomicUsize::new(0));
        let a: Atomic<DropCounter> = Atomic::new(DropCounter(drops.clone()));

        let outer = pin();
        let s = a.load(Ordering::SeqCst, &outer);
        a.store(Shared::null(), Ordering::SeqCst);
        // SAFETY: unlinked above; sole owner.
        unsafe { outer.defer_destroy(s) };
        // While `outer` is live, flushing from other threads must not free.
        for _ in 0..8 {
            std::thread::spawn(|| pin().flush()).join().unwrap();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 0, "freed under a live pin");
        drop(outer);
        for _ in 0..16 {
            pin().flush();
        }
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn unprotected_frees_immediately() {
        let drops = Arc::new(AtomicUsize::new(0));
        let a: Atomic<DropCounter> = Atomic::new(DropCounter(drops.clone()));
        // SAFETY: single-threaded test; no concurrent access.
        let guard = unsafe { unprotected() };
        let s = a.load(Ordering::SeqCst, guard);
        a.store(Shared::null(), Ordering::SeqCst);
        // SAFETY: unlinked above; no other thread exists.
        unsafe { guard.defer_destroy(s) };
        assert_eq!(drops.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_churn_is_safe() {
        // Swap a shared pointer under load while readers deref it; run
        // under ASan/Miri-style checkers this would catch use-after-free.
        let a = Arc::new(Atomic::new(0u64));
        let mut handles = Vec::new();
        for t in 0..4 {
            let a = a.clone();
            handles.push(std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    let guard = pin();
                    let new = Owned::new(t * 1_000_000 + i).into_shared(&guard);
                    let old = a.swap(new, Ordering::SeqCst, &guard);
                    if !old.is_null() {
                        // SAFETY: `old` was just unlinked by the swap and
                        // this thread is its unique retiring owner.
                        unsafe { guard.defer_destroy(old) };
                    }
                    // SAFETY: loaded under the same guard.
                    let cur = a.load(Ordering::SeqCst, &guard);
                    if let Some(v) = unsafe { cur.as_ref() } {
                        assert!(*v < 4_000_000);
                    }
                    if i % 512 == 0 {
                        guard.flush();
                    }
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        // Final cleanup of the last value.
        // SAFETY: all threads joined; no concurrent access remains.
        let guard = unsafe { unprotected() };
        let last = a.load(Ordering::SeqCst, guard);
        if !last.is_null() {
            // SAFETY: sole owner after join.
            drop(unsafe { last.into_owned() });
        }
    }
}
