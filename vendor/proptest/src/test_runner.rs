//! Test-execution configuration and the deterministic RNG behind it.

/// Per-test configuration, set via `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Upstream's default is 256; this stand-in halves it to keep the
        // no-shrink stub fast, which the workspace's suites override anyway.
        Self { cases: 128 }
    }
}

/// Deterministic generator used by strategies: xoshiro-quality mixing is
/// unnecessary here, SplitMix64 suffices for test-case generation.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test's name, so every run of a given
    /// test explores the identical case sequence (reproducibility without
    /// `proptest-regressions` files).
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        Self { state: h }
    }

    /// Next raw 64-bit value (SplitMix64).
    #[allow(clippy::should_implement_trait)]
    pub fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)` via widening-multiply reduction.
    ///
    /// # Panics
    /// If `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        ((self.next() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform float in `[0, 1)` with 53 mantissa bits.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}
