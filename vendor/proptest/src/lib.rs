//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset of the proptest 1.x API this workspace uses:
//! the [`proptest!`] macro with `#![proptest_config(...)]`, integer/float
//! range strategies, tuples, [`strategy::Just`], `prop_map`,
//! [`prop_oneof!`], [`collection::vec`], [`option::of`],
//! [`arbitrary::any`], and the `prop_assert*` macros.
//!
//! # Differences from upstream
//!
//! * **No shrinking.** A failing case panics with the generated inputs in
//!   the panic message (via the enclosing test's assertion), but is not
//!   minimized.
//! * **Deterministic seeding.** Each test derives its RNG seed from the
//!   test's name, so runs are reproducible; `proptest-regressions` files
//!   are not read or written.
//! * `prop_assert!`/`prop_assert_eq!` panic immediately instead of
//!   returning `Err(TestCaseError)`.
//!
//! To switch back to upstream, point the `proptest` entry of
//! `[workspace.dependencies]` at the registry version; the test code in
//! this workspace is written against the upstream API.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod strategy;
pub mod test_runner;

/// The glob import used by tests: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Assert a condition inside a property; panics (no shrink) on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

/// Assert equality inside a property; panics (no shrink) on failure.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => { assert_eq!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_eq!($left, $right, $($fmt)+) };
}

/// Assert inequality inside a property; panics (no shrink) on failure.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => { assert_ne!($left, $right) };
    ($left:expr, $right:expr, $($fmt:tt)+) => { assert_ne!($left, $right, $($fmt)+) };
}

/// Choose uniformly among several strategies producing the same value type.
///
/// Upstream's `weight => strategy` arms are not supported — every listed
/// strategy is equally likely.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Define property tests. Mirrors upstream's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///
///     #[test]
///     fn my_property(x in 0u64..100, v in vec(any::<u64>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strategy:expr),+ $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let _ = case;
                $(
                    let $arg = $crate::strategy::Strategy::generate(
                        &$strategy,
                        &mut rng,
                    );
                )+
                $body
            }
        }
        $crate::proptest!(@munch ($config) $($rest)*);
    };
    (@munch ($config:expr)) => {};
    ($($rest:tt)*) => {
        $crate::proptest!(
            @munch ($crate::test_runner::ProptestConfig::default()) $($rest)*
        );
    };
}

#[cfg(test)]
mod tests {
    use crate::collection::vec;
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(
            a in 3u64..17,
            b in 0.25f64..0.75,
            c in 1usize..=4,
        ) {
            prop_assert!((3..17).contains(&a));
            prop_assert!((0.25..0.75).contains(&b));
            prop_assert!((1..=4).contains(&c));
        }

        #[test]
        fn vec_and_tuple_strategies(
            pairs in vec((0u64..10, 1u64..5), 0..20),
        ) {
            prop_assert!(pairs.len() < 20);
            for (x, y) in pairs {
                prop_assert!(x < 10 && (1..5).contains(&y));
            }
        }

        #[test]
        fn oneof_and_map(
            v in prop_oneof![
                (0u64..5).prop_map(|x| x * 2),
                Just(99u64),
            ],
        ) {
            prop_assert!(v == 99 || v % 2 == 0);
        }

        #[test]
        fn optional_values(o in crate::option::of(1u64..10)) {
            if let Some(v) = o {
                prop_assert!((1..10).contains(&v));
            }
        }
    }

    #[test]
    fn option_of_produces_both_variants() {
        let mut rng = crate::test_runner::TestRng::deterministic("both");
        let strat = crate::option::of(0u64..10);
        let mut some = 0;
        let mut none = 0;
        for _ in 0..200 {
            match strat.generate(&mut rng) {
                Some(_) => some += 1,
                None => none += 1,
            }
        }
        assert!(some > 0 && none > 0, "some={some} none={none}");
    }

    #[test]
    fn any_covers_wide_range() {
        let mut rng = crate::test_runner::TestRng::deterministic("any");
        let strat = any::<u64>();
        let mut high = false;
        for _ in 0..100 {
            if strat.generate(&mut rng) > u64::MAX / 2 {
                high = true;
            }
        }
        assert!(high, "any::<u64>() never produced a high value");
    }
}
