//! Value-generation strategies (no shrinking — see the crate docs).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of type [`Strategy::Value`].
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform every generated value with `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Erase the concrete strategy type (used by [`crate::prop_oneof!`]).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy {
            inner: Rc::new(self),
        }
    }
}

/// Strategies behind shared references generate like the referent; this is
/// what lets the [`crate::proptest!`] macro take `&$strategy`.
impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// The always-equal strategy: generates clones of a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// A type-erased strategy, cheaply cloneable.
pub struct BoxedStrategy<V> {
    inner: Rc<dyn ErasedStrategy<V>>,
}

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        Self {
            inner: self.inner.clone(),
        }
    }
}

trait ErasedStrategy<V> {
    fn erased_generate(&self, rng: &mut TestRng) -> V;
}

impl<S: Strategy> ErasedStrategy<S::Value> for S {
    fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        self.inner.erased_generate(rng)
    }
}

/// Uniform choice among equally-weighted strategies
/// (built by [`crate::prop_oneof!`]).
pub struct Union<V> {
    variants: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Build from the (non-empty) list of variants.
    pub fn new(variants: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!variants.is_empty(), "prop_oneof! needs at least one arm");
        Self { variants }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let i = rng.below(self.variants.len() as u64) as usize;
        self.variants[i].generate(rng)
    }
}

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.below(span) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next() as $t;
                }
                lo + rng.below(span + 1) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for Range<f32> {
    type Value = f32;
    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + (rng.unit_f64() as f32) * (self.end - self.start)
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

tuple_strategy! {
    (A)
    (A, B)
    (A, B, C)
    (A, B, C, D)
    (A, B, C, D, E)
    (A, B, C, D, E, F)
}
