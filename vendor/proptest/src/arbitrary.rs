//! The `any::<T>()` entry point: canonical full-domain strategies.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// The strategy `any::<Self>()` returns.
    type Strategy: Strategy<Value = Self>;
    /// Build the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T`: uniform over its whole domain.
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Full-domain strategy for a primitive type (returned by [`any`]).
#[derive(Debug, Clone, Copy)]
pub struct AnyPrimitive<T> {
    _marker: std::marker::PhantomData<T>,
}

macro_rules! arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Strategy for AnyPrimitive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next() as $t
            }
        }
        impl Arbitrary for $t {
            type Strategy = AnyPrimitive<$t>;
            fn arbitrary() -> Self::Strategy {
                AnyPrimitive { _marker: std::marker::PhantomData }
            }
        }
    )*};
}

arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for AnyPrimitive<bool> {
    type Value = bool;
    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyPrimitive<bool>;
    fn arbitrary() -> Self::Strategy {
        AnyPrimitive {
            _marker: std::marker::PhantomData,
        }
    }
}
