//! Offline stand-in for the `loom` model checker.
//!
//! Real loom exhaustively enumerates thread interleavings of a bounded
//! model under the C11 memory model. That engine cannot be vendored here,
//! so this stand-in keeps loom's API shape while checking models by
//! **randomized-schedule stressing**:
//!
//! * [`model`] runs the closure `LOOM_ITERS` times (default 200, env
//!   override) instead of once per distinct interleaving;
//! * the atomics in [`sync::atomic`] inject randomized scheduler yields
//!   before and after every operation, seeded per iteration, so distinct
//!   iterations explore distinct interleavings;
//! * [`thread::spawn`] spawns real OS threads.
//!
//! This finds real protocol bugs in practice (it is a focused, seeded
//! version of the hammer-test approach) but is **probabilistic, not
//! exhaustive**: a passing model is strong evidence, not proof. The model
//! code in this workspace is written against the real loom API, so
//! swapping the `loom` entry of `[workspace.dependencies]` to the registry
//! version upgrades the same models to exhaustive checking — see
//! `docs/correctness.md`.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicU64 as StdAtomicU64, Ordering as StdOrdering};

/// Global iteration seed, re-set by [`model`] for each iteration.
static MODEL_SEED: StdAtomicU64 = StdAtomicU64::new(1);

thread_local! {
    /// Per-thread scheduler-perturbation RNG state.
    static SCHED_RNG: Cell<u64> = const { Cell::new(0) };
}

fn sched_next() -> u64 {
    SCHED_RNG.with(|s| {
        let mut x = s.get();
        if x == 0 {
            // Derive a per-thread stream from the iteration seed and a
            // unique per-thread address.
            let tid = &x as *const u64 as u64;
            x = MODEL_SEED
                .load(StdOrdering::Relaxed)
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                ^ tid.rotate_left(17)
                | 1;
        }
        // xorshift64*
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        s.set(x);
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    })
}

/// Inject a scheduling perturbation point: ~25% of calls yield the CPU,
/// a smaller fraction sleep, forcing descheduling windows long enough for
/// other threads to interleave.
pub(crate) fn preemption_point() {
    let r = sched_next();
    match r % 16 {
        0..=2 => std::thread::yield_now(),
        3 => std::thread::sleep(std::time::Duration::from_micros(r % 50)),
        _ => {}
    }
}

/// Run `f` under randomized-schedule stress (see the crate docs; real loom
/// would enumerate interleavings exhaustively instead).
pub fn model<F: Fn() + Sync + Send + 'static>(f: F) {
    let iters: u64 = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(200);
    for i in 0..iters {
        MODEL_SEED.store(i.wrapping_mul(0x9E37_79B9).wrapping_add(1), StdOrdering::Relaxed);
        SCHED_RNG.with(|s| s.set(0));
        f();
    }
}

/// Thread spawning with preemption on entry, mirroring `loom::thread`.
pub mod thread {
    /// Handle to a spawned model thread.
    pub struct JoinHandle<T> {
        inner: std::thread::JoinHandle<T>,
    }

    impl<T> JoinHandle<T> {
        /// Wait for the thread and return its result.
        pub fn join(self) -> std::thread::Result<T> {
            self.inner.join()
        }
    }

    /// Spawn a model thread.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        JoinHandle {
            inner: std::thread::spawn(move || {
                super::SCHED_RNG.with(|s| s.set(0));
                super::preemption_point();
                f()
            }),
        }
    }

    /// Yield the scheduler.
    pub fn yield_now() {
        std::thread::yield_now();
    }
}

/// Synchronization primitives that inject scheduling perturbation points,
/// mirroring `loom::sync`.
pub mod sync {
    pub use std::sync::Arc;

    /// Atomics whose every operation is a preemption point.
    pub mod atomic {
        pub use std::sync::atomic::Ordering;

        macro_rules! atomic_stub {
            ($name:ident, $std:ty, $prim:ty) => {
                /// Perturbation-injecting wrapper over the std atomic.
                #[derive(Debug, Default)]
                pub struct $name {
                    inner: $std,
                }

                impl $name {
                    /// Create with an initial value.
                    pub fn new(v: $prim) -> Self {
                        Self { inner: <$std>::new(v) }
                    }

                    /// Atomic load.
                    pub fn load(&self, ord: Ordering) -> $prim {
                        crate::preemption_point();
                        let v = self.inner.load(ord);
                        crate::preemption_point();
                        v
                    }

                    /// Atomic store.
                    pub fn store(&self, v: $prim, ord: Ordering) {
                        crate::preemption_point();
                        self.inner.store(v, ord);
                        crate::preemption_point();
                    }

                    /// Atomic swap.
                    pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                        crate::preemption_point();
                        let r = self.inner.swap(v, ord);
                        crate::preemption_point();
                        r
                    }

                    /// Atomic compare-exchange.
                    pub fn compare_exchange(
                        &self,
                        current: $prim,
                        new: $prim,
                        success: Ordering,
                        failure: Ordering,
                    ) -> Result<$prim, $prim> {
                        crate::preemption_point();
                        let r = self.inner.compare_exchange(current, new, success, failure);
                        crate::preemption_point();
                        r
                    }

                    /// Atomic fetch-update loop.
                    pub fn fetch_update<F>(
                        &self,
                        set_order: Ordering,
                        fetch_order: Ordering,
                        f: F,
                    ) -> Result<$prim, $prim>
                    where
                        F: FnMut($prim) -> Option<$prim>,
                    {
                        crate::preemption_point();
                        let r = self.inner.fetch_update(set_order, fetch_order, f);
                        crate::preemption_point();
                        r
                    }
                }
            };
        }

        atomic_stub!(AtomicU64, std::sync::atomic::AtomicU64, u64);
        atomic_stub!(AtomicUsize, std::sync::atomic::AtomicUsize, usize);

        impl AtomicU64 {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: u64, ord: Ordering) -> u64 {
                crate::preemption_point();
                let r = self.inner.fetch_add(v, ord);
                crate::preemption_point();
                r
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: u64, ord: Ordering) -> u64 {
                crate::preemption_point();
                let r = self.inner.fetch_sub(v, ord);
                crate::preemption_point();
                r
            }
        }

        impl AtomicUsize {
            /// Atomic add, returning the previous value.
            pub fn fetch_add(&self, v: usize, ord: Ordering) -> usize {
                crate::preemption_point();
                let r = self.inner.fetch_add(v, ord);
                crate::preemption_point();
                r
            }

            /// Atomic subtract, returning the previous value.
            pub fn fetch_sub(&self, v: usize, ord: Ordering) -> usize {
                crate::preemption_point();
                let r = self.inner.fetch_sub(v, ord);
                crate::preemption_point();
                r
            }
        }

        /// Perturbation-injecting boolean atomic.
        #[derive(Debug, Default)]
        pub struct AtomicBool {
            inner: std::sync::atomic::AtomicBool,
        }

        impl AtomicBool {
            /// Create with an initial value.
            pub fn new(v: bool) -> Self {
                Self {
                    inner: std::sync::atomic::AtomicBool::new(v),
                }
            }

            /// Atomic load.
            pub fn load(&self, ord: Ordering) -> bool {
                crate::preemption_point();
                let v = self.inner.load(ord);
                crate::preemption_point();
                v
            }

            /// Atomic store.
            pub fn store(&self, v: bool, ord: Ordering) {
                crate::preemption_point();
                self.inner.store(v, ord);
                crate::preemption_point();
            }

            /// Atomic compare-exchange.
            pub fn compare_exchange(
                &self,
                current: bool,
                new: bool,
                success: Ordering,
                failure: Ordering,
            ) -> Result<bool, bool> {
                crate::preemption_point();
                let r = self.inner.compare_exchange(current, new, success, failure);
                crate::preemption_point();
                r
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_repeats_and_interleaves() {
        std::env::set_var("LOOM_ITERS", "20");
        super::model(|| {
            let a = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let a = a.clone();
                    super::thread::spawn(move || {
                        for _ in 0..100 {
                            a.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(a.load(Ordering::SeqCst), 300);
        });
    }

    #[test]
    fn cas_contention_single_winner() {
        std::env::set_var("LOOM_ITERS", "50");
        super::model(|| {
            let a = Arc::new(AtomicU64::new(0));
            let winners = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..2)
                .map(|_| {
                    let a = a.clone();
                    let w = winners.clone();
                    super::thread::spawn(move || {
                        if a.compare_exchange(0, 1, Ordering::AcqRel, Ordering::Acquire)
                            .is_ok()
                        {
                            w.fetch_add(1, Ordering::SeqCst);
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(winners.load(Ordering::SeqCst), 1);
        });
    }
}
