//! Offline stand-in for the `criterion` crate.
//!
//! Implements the subset of the criterion 0.5 API the workspace's benches
//! use — `criterion_group!`/`criterion_main!`, [`Criterion::benchmark_group`],
//! [`BenchmarkGroup::bench_function`]/[`BenchmarkGroup::bench_with_input`],
//! [`Bencher::iter`], [`BenchmarkId`], and [`Throughput`] — as a plain
//! wall-clock harness:
//!
//! * each benchmark runs one warm-up iteration, then `sample_size`
//!   measured iterations (default 10);
//! * the median per-iteration time (and derived element throughput, when
//!   [`Throughput::Elements`] was set) is printed to stdout;
//! * there is no statistical analysis, outlier rejection, HTML report, or
//!   `target/criterion` persistence.
//!
//! Numbers from this harness are order-of-magnitude indicators, not
//! criterion-grade measurements. To switch back to upstream, point the
//! `criterion` entry of `[workspace.dependencies]` at the registry version.

#![deny(unsafe_op_in_unsafe_fn)]
#![warn(missing_docs)]

use std::fmt::{self, Display};
use std::time::{Duration, Instant};

/// Prevent the optimizer from eliding a computed value.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Throughput annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self {
            label: format!("{name}/{parameter}"),
        }
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.label)
    }
}

/// Anything accepted as a benchmark name: a string or a [`BenchmarkId`].
pub trait IntoBenchmarkId {
    /// The printable label.
    fn into_label(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_label(self) -> String {
        self.label
    }
}

impl IntoBenchmarkId for &str {
    fn into_label(self) -> String {
        self.to_string()
    }
}

impl IntoBenchmarkId for String {
    fn into_label(self) -> String {
        self
    }
}

/// The benchmark harness handle.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Apply command-line configuration (accepted and ignored, so that
    /// `cargo bench -- <filter>` invocations do not error).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Display) -> BenchmarkGroup<'_> {
        println!("\n== group: {name} ==");
        BenchmarkGroup {
            _criterion: self,
            sample_size: 10,
            throughput: None,
        }
    }

    /// Run a single benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_label(), 10, None, f);
    }
}

/// A group of related benchmarks sharing sample-size/throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Set measured iterations per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Annotate per-iteration throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl IntoBenchmarkId, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_one(&id.into_label(), self.sample_size, self.throughput, f);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        run_one(&id.label, self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Passed to benchmark closures; call [`Bencher::iter`] with the code under
/// measurement.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measure `routine` `sample_size` times (after one warm-up call).
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut routine: F) {
        black_box(routine()); // warm-up, untimed
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
        }
    }
}

fn run_one<F: FnMut(&mut Bencher)>(
    label: &str,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: F,
) {
    let mut b = Bencher {
        samples: Vec::new(),
        sample_size,
    };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<40} (no samples)");
        return;
    }
    b.samples.sort_unstable();
    let median = b.samples[b.samples.len() / 2];
    let extra = match throughput {
        Some(Throughput::Elements(n)) if median.as_secs_f64() > 0.0 => {
            format!(
                "  {:>10.2} Melem/s",
                n as f64 / median.as_secs_f64() / 1e6
            )
        }
        Some(Throughput::Bytes(n)) if median.as_secs_f64() > 0.0 => {
            format!("  {:>10.2} MiB/s", n as f64 / median.as_secs_f64() / (1 << 20) as f64)
        }
        _ => String::new(),
    };
    println!("{label:<40} median {median:>12.3?}{extra}");
}

/// Collect benchmark functions into a runner, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default().configure_from_args();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` for one or more groups, mirroring upstream's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        g.sample_size(3).throughput(Throughput::Elements(10));
        let mut ran = 0u32;
        g.bench_function("noop", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.bench_with_input(BenchmarkId::new("with_input", 7), &7u64, |b, &x| {
            b.iter(|| x * 2)
        });
        g.finish();
        // 1 warm-up + 3 samples.
        assert_eq!(ran, 4);
    }
}
